/**
 * @file
 * The one sanctioned cross-shard communication channel.
 *
 * A ShardPort<T> is a fixed-capacity single-producer/single-consumer
 * ring carrying timestamped messages between exactly two ChannelShards
 * (DESIGN.md §13). It is the *only* way simulation state may cross a
 * shard boundary during a run — mellow-analyze's `port-protocol` and
 * `confinement-*` rules reject everything else — and its API encodes
 * the two properties conservative-lookahead synchronization needs:
 *
 *  1. Lookahead-respecting timestamps. Sender::send takes a SendTime,
 *     which has no public constructor: the only mint is
 *     `now + Lookahead` (strong_types.hh), so a message's delivery
 *     tick is at least one full lookahead window past its send tick
 *     *by construction*. tests/compile_fail/ pins this, and the
 *     analyzer cross-checks every call site against casts.
 *
 *  2. Monotonic publication. Sends must be timestamp-nondecreasing
 *     (panic otherwise), so the ring is sorted by delivery tick and
 *     Receiver::drainUntil can pop exactly the deliverable prefix of
 *     an epoch without ever inspecting a message the producer is
 *     still writing.
 *
 * Endpoint confinement is a move-only affair: sender() and receiver()
 * each hand out their endpoint once, the endpoints cannot be copied
 * (a second thread holding the same side would break the SPSC
 * contract; tests/compile_fail/fail_shardport_cross_thread.cc pins
 * it), and the port itself is declared a capability so confinement
 * manifests can name it. The only inter-thread edges are two
 * sync::SpscSequence publication indices — this header touches no raw
 * atomics, keeping `atomic-order` clean.
 */

#ifndef MELLOWSIM_SIM_SHARD_PORT_HH
#define MELLOWSIM_SIM_SHARD_PORT_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/strong_types.hh"
#include "sim/sync.hh"
#include "sim/types.hh"

namespace mellowsim
{

/**
 * Timestamped SPSC ring between two shards. @p T is the payload; it
 * must be trivially copyable (messages are slots in a reused ring,
 * not owning nodes).
 */
template <typename T>
class MELLOW_CAPABILITY("shard-port") ShardPort
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "ShardPort payloads are ring slots; they must be "
                  "trivially copyable");

  public:
    /** One cross-shard message: deliver @p payload at tick @p when. */
    struct Message
    {
        Tick when = 0;
        T payload{};
    };

    class Sender;
    class Receiver;

    /** @p capacity must be a power of two (masked indexing). */
    explicit ShardPort(std::size_t capacity = kDefaultCapacity)
        : _slots(capacity)
    {
        panic_if(capacity == 0 || (capacity & (capacity - 1)) != 0,
                 "ShardPort capacity must be a power of two (got %llu)",
                 static_cast<unsigned long long>(capacity));
    }
    ShardPort(const ShardPort &) = delete;
    ShardPort &operator=(const ShardPort &) = delete;

    /** Hand out the producer endpoint; callable exactly once. */
    [[nodiscard]] Sender
    sender()
    {
        panic_if(_senderTaken, "ShardPort sender endpoint taken twice");
        _senderTaken = true;
        return Sender(*this);
    }

    /** Hand out the consumer endpoint; callable exactly once. */
    [[nodiscard]] Receiver
    receiver()
    {
        panic_if(_receiverTaken,
                 "ShardPort receiver endpoint taken twice");
        _receiverTaken = true;
        return Receiver(*this);
    }

    [[nodiscard]] std::size_t capacity() const { return _slots.size(); }

    static constexpr std::size_t kDefaultCapacity = 1024;

    /**
     * The producer half: owned by (confined to) the sending shard's
     * thread. Move-only — duplicating it would put two producers on
     * one ring.
     */
    class Sender
    {
      public:
        Sender(Sender &&other) noexcept
            : _port(std::exchange(other._port, nullptr)),
              _lastSent(other._lastSent)
        {
        }
        Sender &operator=(Sender &&other) noexcept
        {
            _port = std::exchange(other._port, nullptr);
            _lastSent = other._lastSent;
            return *this;
        }
        Sender(const Sender &) = delete;
        Sender &operator=(const Sender &) = delete;

        /**
         * Publish a message for delivery at @p when. Returns false if
         * the ring is full (nothing published). Timestamps must be
         * nondecreasing across calls — that is what keeps the ring
         * sorted and drainUntil exact.
         */
        [[nodiscard]] bool
        trySend(SendTime when, T payload)
        {
            panic_if(_port == nullptr, "send on a moved-from Sender");
            panic_if(when.tick() < _lastSent,
                     "non-monotonic ShardPort send: %llu after %llu",
                     static_cast<unsigned long long>(when.tick()),
                     static_cast<unsigned long long>(_lastSent));
            std::uint64_t tail = _port->_tail.ownerRead();
            std::uint64_t head = _port->_head.read();
            if (tail - head == _port->_slots.size())
                return false;
            Message &slot =
                _port->_slots[tail & (_port->_slots.size() - 1)];
            slot.when = when.tick();
            slot.payload = payload;
            _port->_tail.publish(tail + 1);
            _lastSent = when.tick();
            return true;
        }

        /** trySend that treats a full ring as a protocol bug. */
        void
        send(SendTime when, T payload)
        {
            panic_if(!trySend(when, payload),
                     "ShardPort overflow: ring of %llu messages full",
                     static_cast<unsigned long long>(
                         _port->_slots.size()));
        }

        /** Delivery tick of the last published message (0 if none). */
        [[nodiscard]] Tick lastSent() const { return _lastSent; }

      private:
        friend class ShardPort;
        explicit Sender(ShardPort &port) : _port(&port) {}

        ShardPort *_port;
        Tick _lastSent = 0;
    };

    /**
     * The consumer half: owned by (confined to) the receiving shard's
     * thread. Move-only for the same reason Sender is.
     */
    class Receiver
    {
      public:
        Receiver(Receiver &&other) noexcept
            : _port(std::exchange(other._port, nullptr))
        {
        }
        Receiver &operator=(Receiver &&other) noexcept
        {
            _port = std::exchange(other._port, nullptr);
            return *this;
        }
        Receiver(const Receiver &) = delete;
        Receiver &operator=(const Receiver &) = delete;

        /**
         * Pop every message with delivery tick < @p horizon, in send
         * order, invoking `fn(Tick when, T payload)` for each. The
         * first message at or past the horizon stays queued — because
         * timestamps are monotonic, everything behind it does too, so
         * the result is exact regardless of how far ahead the
         * producer has run. Returns the number delivered.
         */
        template <typename F>
        std::size_t
        drainUntil(Tick horizon, F &&fn)
        {
            panic_if(_port == nullptr, "drain on a moved-from Receiver");
            std::uint64_t head = _port->_head.ownerRead();
            std::uint64_t tail = _port->_tail.read();
            std::size_t delivered = 0;
            while (head != tail) {
                const Message &slot =
                    _port->_slots[head & (_port->_slots.size() - 1)];
                if (slot.when >= horizon)
                    break;
                Tick when = slot.when;
                T payload = slot.payload;
                ++head;
                // Free the slot before running the callback so a
                // callback that triggers a reply cannot see a
                // spuriously full ring.
                _port->_head.publish(head);
                fn(when, payload);
                ++delivered;
            }
            return delivered;
        }

        /** Messages currently queued (racy snapshot; test/debug use). */
        [[nodiscard]] std::size_t
        pending() const
        {
            panic_if(_port == nullptr, "pending on a moved-from Receiver");
            return static_cast<std::size_t>(_port->_tail.read() -
                                            _port->_head.ownerRead());
        }

      private:
        friend class ShardPort;
        explicit Receiver(ShardPort &port) : _port(&port) {}

        ShardPort *_port;
    };

  private:
    std::vector<Message> _slots;
    /** Consumer cursor: slots below it are free for reuse. */
    sync::SpscSequence _head;
    /** Producer cursor: slots below it are published messages. */
    sync::SpscSequence _tail;
    bool _senderTaken = false;
    bool _receiverTaken = false;
};

} // namespace mellowsim

#endif // MELLOWSIM_SIM_SHARD_PORT_HH
