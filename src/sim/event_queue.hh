/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated system. Events are
 * arbitrary callables scheduled at absolute ticks; events scheduled
 * for the same tick fire in FIFO order of scheduling, which keeps
 * every run bit-deterministic.
 *
 * Components may hold an EventHandle to a scheduled event in order to
 * deschedule or reschedule it (e.g. a memory controller's "try issue"
 * event, or a cancellable write completion).
 *
 * Performance architecture (see DESIGN.md "Performance architecture"):
 * the kernel allocates nothing in steady state. Callables live in a
 * slab-allocated pool of fixed-size slots with inline small-buffer
 * storage (kInlineCallableBytes); callables that do not fit fall back
 * to a size-bucketed out-of-line pool, and both recycle through free
 * lists. EventHandles are generation-tagged (slot index, generation),
 * so deschedule() and scheduled() are O(1) array accesses and a stale
 * handle to a recycled slot is detected, not mis-resolved. Cancelled
 * events are removed lazily from the time heap; when more than half
 * of the heap is stale it is compacted in place.
 *
 * Determinism argument: the heap is ordered by the strict total order
 * (when, seq) where seq is a monotonic schedule counter, so the fire
 * sequence is a pure function of the schedule-call sequence. Slot
 * reuse, free-list order and heap compaction change only *where*
 * callables are stored, never the (when, seq) keys, so they cannot
 * reorder fires. tools/determinism_check audits this end to end.
 */

#ifndef MELLOWSIM_SIM_EVENT_QUEUE_HH
#define MELLOWSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace mellowsim
{

class EventQueue;

/**
 * Generation-tagged reference to a scheduled event. Obtained from
 * EventQueue::schedule() and consumed by deschedule()/scheduled().
 *
 * A handle stays valid-to-inspect forever: once its event fires or is
 * descheduled the slot's key moves on, so the handle simply reports
 * unscheduled and deschedule() through it is a safe no-op — even
 * after the slot has been recycled for a different event.
 *
 * Representation: one 64-bit key packing the monotonic schedule
 * sequence number (high bits, the generation tag) over the pool slot
 * index (low bits). Key 0 is the "never bound" sentinel — sequence
 * numbers start at 1.
 */
class EventHandle
{
  public:
    constexpr EventHandle() = default;

    /** True iff this handle was ever bound to an event. */
    [[nodiscard]] constexpr bool
    valid() const
    {
        return _key != 0;
    }

    friend constexpr bool operator==(EventHandle, EventHandle) = default;

  private:
    friend class EventQueue;

    constexpr explicit EventHandle(std::uint64_t key) : _key(key) {}

    std::uint64_t _key = 0;
};

/** Sentinel for "no event". */
inline constexpr EventHandle InvalidEventHandle{};

/** Legacy names; the handle is the event's identity. */
using EventId = EventHandle;
inline constexpr EventHandle InvalidEventId{};

/**
 * The central event queue.
 *
 * Invariants:
 *  - time never moves backwards: events may only be scheduled at
 *    curTick() or later;
 *  - same-tick events execute in the order they were scheduled.
 */
class EventQueue
{
  public:
    /**
     * Inline callable capacity of one pool slot. Hot-path lambdas
     * (a captured `this` plus a few words) must fit — the controller
     * static_asserts its completion callbacks against this; larger
     * callables transparently use the pooled out-of-line fallback.
     */
    static constexpr std::size_t kInlineCallableBytes = 48;

    /** True iff F is stored inline in the slot (no fallback). */
    template <typename F>
    [[nodiscard]] static constexpr bool
    fitsInline()
    {
        return sizeof(F) <= kInlineCallableBytes &&
               alignof(F) <= alignof(std::max_align_t);
    }

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulation time. */
    [[nodiscard]] Tick curTick() const { return _curTick; }

    /**
     * Schedule @p action to run at absolute tick @p when.
     *
     * @param when  Absolute tick; must be >= curTick().
     * @param action  Callback to execute.
     * @return Handle usable with deschedule()/scheduled().
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&action)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_v<Fn &>,
                      "event action must be callable with no args");
        panic_if(when < _curTick,
                 "scheduling into the past: when=%llu cur=%llu",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(_curTick));

        panic_if(_nextSeq >= kMaxSeq,
                 "event sequence counter exhausted");
        std::uint32_t index = acquireSlot();
        Slot &s = slotRef(index);
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(s.storage))
                Fn(std::forward<F>(action));
            s.outline = nullptr;
        } else {
            static_assert(alignof(Fn) <= alignof(std::max_align_t),
                          "over-aligned event callables are not "
                          "supported");
            unsigned bucket = 0;
            void *mem = outlineAcquire(sizeof(Fn), &bucket);
            ::new (mem) Fn(std::forward<F>(action));
            s.outline = mem;
            s.outlineBucket = bucket;
        }
        s.invoke = [](void *obj) { (*static_cast<Fn *>(obj))(); };
        if constexpr (std::is_trivially_destructible_v<Fn>) {
            s.destroy = nullptr;
        } else {
            s.destroy = [](void *obj) { static_cast<Fn *>(obj)->~Fn(); };
        }

        std::uint64_t key = (_nextSeq++ << kSlotBits) | index;
        s.pendingKey = key;
        _heap.push_back(Entry{when, key});
        heapSiftUp(_heap.size() - 1);
        ++_numPending;
        return EventHandle(key);
    }

    /** Schedule @p action @p delta ticks from now. */
    template <typename F>
    EventHandle
    scheduleIn(Tick delta, F &&action)
    {
        return schedule(_curTick + delta, std::forward<F>(action));
    }

    /**
     * Cancel a previously scheduled event. O(1).
     *
     * @retval true the event existed and was cancelled.
     * @retval false the event already fired, was already cancelled, or
     *               @p handle never referred to an event.
     */
    bool deschedule(EventHandle handle);

    /** True iff the event behind @p handle is still pending. O(1). */
    [[nodiscard]] bool
    scheduled(EventHandle handle) const
    {
        std::uint32_t slot = slotOf(handle._key);
        if (handle._key == 0 || slot >= _slotCount)
            return false;
        return slotRef(slot).pendingKey == handle._key;
    }

    /** Number of pending (non-cancelled) events. */
    [[nodiscard]] std::size_t numPending() const { return _numPending; }

    // --- Audit accessors (src/check/) -----------------------------
    /**
     * Earliest tick present in the heap (MaxTick if empty). Includes
     * lazily-cancelled entries, which is fine for auditing: every
     * entry was scheduled at >= the then-current tick, so even a
     * stale entry must not sit in the past.
     */
    [[nodiscard]] Tick
    minPendingTick() const
    {
        return _heap.empty() ? MaxTick : _heap.front().when;
    }

    /** Heap entries, including cancelled ones awaiting lazy removal. */
    [[nodiscard]] std::size_t rawHeapSize() const { return _heap.size(); }

    /** Pool slots ever created (capacity watermark, for tests). */
    [[nodiscard]] std::size_t slotCount() const { return _slotCount; }

    /** True iff no events remain. */
    [[nodiscard]] bool empty() const { return _numPending == 0; }

    /**
     * Run events until the queue empties or @p stopAt is reached.
     *
     * Events scheduled exactly at @p stopAt are NOT executed; time is
     * left at min(next event tick, stopAt).
     *
     * @return Number of events executed.
     */
    std::uint64_t run(Tick stopAt = MaxTick);

    /**
     * Execute at most one event.
     *
     * @retval true an event was executed.
     * @retval false the queue is empty.
     */
    bool step();

  private:
    /**
     * One pool slot. Slots live in fixed-size chunks that are never
     * relocated, so a callable's address stays stable while it runs —
     * events may freely schedule further events (growing the pool)
     * from inside their own invocation.
     */
    struct Slot
    {
        alignas(std::max_align_t)
            unsigned char storage[kInlineCallableBytes];
        /** Non-null iff the slot holds a pending callable. */
        void (*invoke)(void *) = nullptr;
        /** Null for trivially-destructible callables. */
        void (*destroy)(void *) = nullptr;
        /** Out-of-line callable storage; null when inline. */
        void *outline = nullptr;
        /**
         * Key of the pending event occupying this slot; 0 when the
         * slot is disarmed. The key's sequence bits act as the
         * generation tag: a stale handle or heap entry into a
         * recycled slot compares unequal.
         */
        std::uint64_t pendingKey = 0;
        /** Free-list link (valid only while the slot is free). */
        std::uint32_t nextFree = kNoSlot;
        /** Size class of the outline block (valid when outline set). */
        unsigned outlineBucket = 0;
    };

    /**
     * Heap key: strict total order by (when, key). The key's high
     * bits are the monotonic schedule sequence, so comparing keys is
     * comparing schedule order — same-tick FIFO — and the 16-byte
     * entry puts all four children of a 4-ary heap node in one cache
     * line.
     */
    struct Entry
    {
        Tick when;
        std::uint64_t key;
    };

    /**
     * Total heap order as one 128-bit integer: (when, key)
     * lexicographic. A single wide compare turns the sift loops'
     * child-selection into conditional moves — the data-dependent
     * branches of a classic comparator mispredict on nearly every
     * level and dominated the kernel's cost.
     */
    [[nodiscard]] static unsigned __int128
    key128(const Entry &e)
    {
        return (static_cast<unsigned __int128>(e.when) << 64) | e.key;
    }

    /** Heap order predicate: true iff @p a fires after @p b. */
    [[nodiscard]] static bool
    after(const Entry &a, const Entry &b)
    {
        return key128(a) > key128(b);
    }

    void
    heapSiftUp(std::size_t i)
    {
        Entry e = _heap[i];
        unsigned __int128 ek = key128(e);
        while (i > 0) {
            std::size_t parent = (i - 1) >> 1;
            if (key128(_heap[parent]) <= ek)
                break;
            _heap[i] = _heap[parent];
            i = parent;
        }
        _heap[i] = e;
    }

    void
    heapSiftDown(std::size_t i)
    {
        Entry e = _heap[i];
        unsigned __int128 ek = key128(e);
        const std::size_t n = _heap.size();
        for (;;) {
            std::size_t left = 2 * i + 1;
            if (left >= n)
                break;
            std::size_t right = left + 1;
            std::size_t best = left;
            unsigned __int128 bk = key128(_heap[left]);
            if (right < n) {
                unsigned __int128 rk = key128(_heap[right]);
                best = rk < bk ? right : left;
                bk = rk < bk ? rk : bk;
            }
            if (ek <= bk)
                break;
            _heap[i] = _heap[best];
            i = best;
        }
        _heap[i] = e;
    }

    /** Slot-index field width of a packed event key. */
    static constexpr unsigned kSlotBits = 24;
    static constexpr std::uint64_t kSlotMask =
        (std::uint64_t{1} << kSlotBits) - 1;
    /** Sequence numbers above this would overflow the key packing. */
    static constexpr std::uint64_t kMaxSeq =
        std::uint64_t{1} << (64 - kSlotBits);
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    static constexpr std::uint32_t kChunkShift = 8;
    static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;
    /** Compact only heaps at least this large (hysteresis). */
    static constexpr std::size_t kCompactMinEntries = 64;
    /** Out-of-line size classes: 64 B << bucket, up to 64 KiB. */
    static constexpr unsigned kOutlineBuckets = 11;
    static constexpr std::size_t kOutlineBaseBytes = 64;

    [[nodiscard]] Slot &
    slotRef(std::uint32_t index)
    {
        return _chunks[index >> kChunkShift][index &
                                             (kChunkSlots - 1)];
    }

    [[nodiscard]] const Slot &
    slotRef(std::uint32_t index) const
    {
        return _chunks[index >> kChunkShift][index &
                                             (kChunkSlots - 1)];
    }

    /** Slot index packed into an event key. */
    [[nodiscard]] static constexpr std::uint32_t
    slotOf(std::uint64_t key)
    {
        return static_cast<std::uint32_t>(key & kSlotMask);
    }

    /** True iff the heap entry still refers to a pending event. */
    [[nodiscard]] bool
    entryLive(const Entry &e) const
    {
        return slotRef(slotOf(e.key)).pendingKey == e.key;
    }

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t index);

    /**
     * Disarm a slot: destroy the callable, release any outline block
     * and bump the generation. The heap entry is left for lazy
     * removal (deschedule) or has already been popped (fire).
     */
    void disarmSlot(Slot &s);

    /** Pop the top heap entry. */
    void popTop();

    /** Fire the pending event in @p s / @p index at the current tick. */
    void fireSlot(Slot &s, std::uint32_t index);

    /** Drop cancelled entries and re-heapify when they dominate. */
    void maybeCompact();

    void *outlineAcquire(std::size_t bytes, unsigned *bucket);
    void outlineRelease(void *block, unsigned bucket);

    Tick _curTick = 0;
    std::uint64_t _nextSeq = 1;
    std::size_t _numPending = 0;

    std::vector<Entry> _heap;

    // --- Slot pool -------------------------------------------------
    std::vector<std::unique_ptr<Slot[]>> _chunks;
    std::uint32_t _slotCount = 0;
    std::uint32_t _freeHead = kNoSlot;

    // --- Out-of-line callable pool (size-bucketed free lists) ------
    struct OutlineBlock
    {
        OutlineBlock *next;
    };
    OutlineBlock *_outlineFree[kOutlineBuckets] = {};
};

} // namespace mellowsim

#endif // MELLOWSIM_SIM_EVENT_QUEUE_HH
