/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated system. Events are
 * arbitrary callables scheduled at absolute ticks; events scheduled for
 * the same tick fire in FIFO order of scheduling, which keeps every run
 * bit-deterministic.
 *
 * Components may hold an EventHandle to a scheduled event in order to
 * deschedule or reschedule it (e.g. a memory controller's "try issue"
 * event, or a cancellable write completion).
 */

#ifndef MELLOWSIM_SIM_EVENT_QUEUE_HH
#define MELLOWSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** Callback type executed when an event fires. */
using EventAction = std::function<void()>;

/**
 * Opaque identity of a scheduled event. Obtained from
 * EventQueue::schedule() and consumed by deschedule().
 */
using EventId = std::uint64_t;

/** Sentinel for "no event". */
constexpr EventId InvalidEventId = 0;

/**
 * The central event queue.
 *
 * Invariants:
 *  - time never moves backwards: events may only be scheduled at
 *    curTick() or later;
 *  - same-tick events execute in the order they were scheduled.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    [[nodiscard]] Tick curTick() const { return _curTick; }

    /**
     * Schedule @p action to run at absolute tick @p when.
     *
     * @param when  Absolute tick; must be >= curTick().
     * @param action  Callback to execute.
     * @return Identity usable with deschedule().
     */
    EventId schedule(Tick when, EventAction action);

    /** Schedule @p action @p delta ticks from now. */
    EventId
    scheduleIn(Tick delta, EventAction action)
    {
        return schedule(_curTick + delta, std::move(action));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @retval true the event existed and was cancelled.
     * @retval false the event already fired or was already cancelled.
     */
    bool deschedule(EventId id);

    /** True iff the event with identity @p id is still pending. */
    [[nodiscard]] bool scheduled(EventId id) const;

    /** Number of pending (non-cancelled) events. */
    [[nodiscard]] std::size_t numPending() const { return _numPending; }

    // --- Audit accessors (src/check/) -----------------------------
    /**
     * Earliest tick present in the heap (MaxTick if empty). Includes
     * lazily-cancelled entries, which is fine for auditing: every
     * entry was scheduled at >= the then-current tick, so even a
     * stale entry must not sit in the past.
     */
    [[nodiscard]] Tick
    minPendingTick() const
    {
        return _heap.empty() ? MaxTick : _heap.top().when;
    }

    /** Heap entries, including cancelled ones awaiting lazy removal. */
    [[nodiscard]] std::size_t rawHeapSize() const { return _heap.size(); }

    /** True iff no events remain. */
    [[nodiscard]] bool empty() const { return _numPending == 0; }

    /**
     * Run events until the queue empties or @p stopAt is reached.
     *
     * Events scheduled exactly at @p stopAt are NOT executed; time is
     * left at min(next event tick, stopAt).
     *
     * @return Number of events executed.
     */
    std::uint64_t run(Tick stopAt = MaxTick);

    /**
     * Execute at most one event.
     *
     * @retval true an event was executed.
     * @retval false the queue is empty.
     */
    bool step();

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        // Min-heap by (when, id); id strictly increases with insertion
        // order, giving same-tick FIFO semantics.
        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    Tick _curTick = 0;
    EventId _nextId = 1;
    std::size_t _numPending = 0;

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        _heap;

    /** Live actions by id; erased on fire/cancel (lazy deletion). */
    std::unordered_map<EventId, EventAction> _actions;
};

} // namespace mellowsim

#endif // MELLOWSIM_SIM_EVENT_QUEUE_HH
