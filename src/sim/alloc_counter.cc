#include "sim/alloc_counter.hh"

#ifdef MELLOWSIM_ALLOC_COUNTER_ENABLED

#include <atomic>
#include <cstdlib>
#include <new>

namespace
{

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void *
countedAlloc(std::size_t bytes)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    // malloc(0) may return null; the returned pointer must be unique.
    if (void *p = std::malloc(bytes ? bytes : 1))
        return p;
    return nullptr;
}

void *
countedAlignedAlloc(std::size_t bytes, std::size_t alignment)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, alignment, bytes ? bytes : alignment) != 0)
        return nullptr;
    return p;
}

void
countedFree(void *p)
{
    if (p == nullptr)
        return;
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

} // namespace

namespace mellowsim::alloccounter
{

bool
enabled()
{
    return true;
}

std::uint64_t
allocations()
{
    return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t
deallocations()
{
    return g_frees.load(std::memory_order_relaxed);
}

} // namespace mellowsim::alloccounter

// --- Replaced global allocation functions ---------------------------

void *
operator new(std::size_t bytes)
{
    if (void *p = countedAlloc(bytes))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t bytes)
{
    if (void *p = countedAlloc(bytes))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t bytes, const std::nothrow_t &) noexcept
{
    return countedAlloc(bytes);
}

void *
operator new[](std::size_t bytes, const std::nothrow_t &) noexcept
{
    return countedAlloc(bytes);
}

void *
operator new(std::size_t bytes, std::align_val_t align)
{
    if (void *p =
            countedAlignedAlloc(bytes, static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t bytes, std::align_val_t align)
{
    if (void *p =
            countedAlignedAlloc(bytes, static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

#else // !MELLOWSIM_ALLOC_COUNTER_ENABLED

namespace mellowsim::alloccounter
{

bool
enabled()
{
    return false;
}

std::uint64_t
allocations()
{
    return 0;
}

std::uint64_t
deallocations()
{
    return 0;
}

} // namespace mellowsim::alloccounter

#endif // MELLOWSIM_ALLOC_COUNTER_ENABLED
