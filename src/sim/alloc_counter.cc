#include "sim/alloc_counter.hh"

#ifdef MELLOWSIM_ALLOC_COUNTER_ENABLED

#include <cstdlib>
#include <new>

#include "sim/sync.hh"

namespace
{

// Constant-initialized (constexpr std::atomic ctor inside), so the
// replaced operator new is safe to hit during static initialization
// of other translation units.
mellowsim::sync::RelaxedCounter g_allocs;
mellowsim::sync::RelaxedCounter g_frees;

void *
countedAlloc(std::size_t bytes)
{
    g_allocs.increment();
    // malloc(0) may return null; the returned pointer must be unique.
    if (void *p = std::malloc(bytes ? bytes : 1))
        return p;
    return nullptr;
}

void *
countedAlignedAlloc(std::size_t bytes, std::size_t alignment)
{
    g_allocs.increment();
    void *p = nullptr;
    if (posix_memalign(&p, alignment, bytes ? bytes : alignment) != 0)
        return nullptr;
    return p;
}

void
countedFree(void *p)
{
    if (p == nullptr)
        return;
    g_frees.increment();
    std::free(p);
}

} // namespace

namespace mellowsim::alloccounter
{

bool
enabled()
{
    return true;
}

std::uint64_t
allocations()
{
    return g_allocs.value();
}

std::uint64_t
deallocations()
{
    return g_frees.value();
}

} // namespace mellowsim::alloccounter

// --- Replaced global allocation functions ---------------------------

void *
operator new(std::size_t bytes)
{
    if (void *p = countedAlloc(bytes))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t bytes)
{
    if (void *p = countedAlloc(bytes))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t bytes, const std::nothrow_t &) noexcept
{
    return countedAlloc(bytes);
}

void *
operator new[](std::size_t bytes, const std::nothrow_t &) noexcept
{
    return countedAlloc(bytes);
}

void *
operator new(std::size_t bytes, std::align_val_t align)
{
    if (void *p =
            countedAlignedAlloc(bytes, static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t bytes, std::align_val_t align)
{
    if (void *p =
            countedAlignedAlloc(bytes, static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

#else // !MELLOWSIM_ALLOC_COUNTER_ENABLED

namespace mellowsim::alloccounter
{

bool
enabled()
{
    return false;
}

std::uint64_t
allocations()
{
    return 0;
}

std::uint64_t
deallocations()
{
    return 0;
}

} // namespace mellowsim::alloccounter

#endif // MELLOWSIM_ALLOC_COUNTER_ENABLED
