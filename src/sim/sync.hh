/**
 * @file
 * Concurrency primitives and capability annotations for mellowsim.
 *
 * This header is the ONLY sanctioned home of raw standard-library
 * synchronization primitives (std::mutex, std::thread, ...);
 * tools/mellow_lint.py's `raw-sync-primitive` rule rejects them
 * anywhere else. Everything that shares state across threads goes
 * through these wrappers, for two reasons:
 *
 *  1. The wrappers carry Clang Thread Safety Analysis attributes
 *     (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), so a
 *     Clang build with MELLOWSIM_THREAD_SAFETY=ON (the `thread-safety`
 *     preset, errors in CI) statically proves that every access to a
 *     MELLOW_GUARDED_BY field happens with its mutex held. Under
 *     other compilers the attributes expand to nothing and the
 *     wrappers are zero-cost forwarding shims.
 *
 *  2. They give the shard-confinement analysis
 *     (tools/analyze/confinement.toml) a closed vocabulary of
 *     "synchronized" types: mutable state shared across threads must
 *     be one of these types (or std::atomic / thread_local), or the
 *     `confinement-global` rule flags it.
 *
 * The concurrency model itself (what is shard-owned, what is shared
 * immutable, what must be synchronized) is documented in DESIGN.md
 * §11 and declared machine-checkably in tools/analyze/confinement.toml.
 */

#ifndef MELLOWSIM_SIM_SYNC_HH
#define MELLOWSIM_SIM_SYNC_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

// --- Clang Thread Safety Analysis attribute macros -------------------
//
// MELLOW_-prefixed so they cannot collide with other libraries'
// spellings of the same attributes. No-ops on compilers without the
// capability attribute family (GCC, MSVC).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MELLOW_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MELLOW_THREAD_ANNOTATION
#define MELLOW_THREAD_ANNOTATION(x)
#endif

/** Marks a class as a lockable capability (e.g. a mutex type). */
#define MELLOW_CAPABILITY(x) MELLOW_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define MELLOW_SCOPED_CAPABILITY MELLOW_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be accessed while holding @p x. */
#define MELLOW_GUARDED_BY(x) MELLOW_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be accessed while holding @p x. */
#define MELLOW_PT_GUARDED_BY(x) MELLOW_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the given capabilities to call this function. */
#define MELLOW_REQUIRES(...) \
    MELLOW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the given capabilities (and doesn't release). */
#define MELLOW_ACQUIRE(...) \
    MELLOW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the given capabilities. */
#define MELLOW_RELEASE(...) \
    MELLOW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability when it returns @p result. */
#define MELLOW_TRY_ACQUIRE(...) \
    MELLOW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the given capabilities (deadlock guard). */
#define MELLOW_EXCLUDES(...) \
    MELLOW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Escape hatch; every use needs a comment explaining why. */
#define MELLOW_NO_THREAD_SAFETY_ANALYSIS \
    MELLOW_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mellowsim::sync
{

/**
 * Plain mutual-exclusion capability wrapping std::mutex.
 *
 * Use together with MELLOW_GUARDED_BY on the state it protects and
 * LockGuard for scoped acquisition; bare lock()/unlock() pairs are for
 * the rare site an RAII scope cannot express.
 */
class MELLOW_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() MELLOW_ACQUIRE() { _mutex.lock(); }
    void unlock() MELLOW_RELEASE() { _mutex.unlock(); }
    [[nodiscard]] bool tryLock() MELLOW_TRY_ACQUIRE(true)
    {
        return _mutex.try_lock();
    }

  private:
    std::mutex _mutex;
};

/** Scoped acquisition of a Mutex (RAII std::lock_guard equivalent). */
class MELLOW_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mutex) MELLOW_ACQUIRE(mutex) : _mutex(mutex)
    {
        _mutex.lock();
    }
    ~LockGuard() MELLOW_RELEASE() { _mutex.unlock(); }
    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &_mutex;
};

/**
 * Monotonic event tally safe to bump from any thread.
 *
 * Relaxed ordering: the count is a statistic, not a synchronization
 * point — readers only ever see it quiescent (after a join) or accept
 * an instantaneous sample (the allocation counter's steady-state
 * delta check).
 */
class RelaxedCounter
{
  public:
    void increment() { _value.fetch_add(1, std::memory_order_relaxed); }
    void add(std::uint64_t n)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/**
 * Owning group of worker threads, joined in the destructor.
 *
 * The RAII join is the point: if spawning thread k throws (resource
 * exhaustion) or the spawning scope unwinds for any other reason,
 * threads 0..k-1 are still joined instead of leaking into
 * std::terminate at std::thread destruction.
 */
class ThreadGroup
{
  public:
    ThreadGroup() = default;
    explicit ThreadGroup(std::size_t expected)
    {
        _threads.reserve(expected);
    }
    ~ThreadGroup() { joinAll(); }
    ThreadGroup(const ThreadGroup &) = delete;
    ThreadGroup &operator=(const ThreadGroup &) = delete;

    /** Start one worker running @p fn. */
    template <typename Fn>
    void
    spawn(Fn &&fn)
    {
        _threads.emplace_back(std::forward<Fn>(fn));
    }

    /** Join every still-joinable worker (idempotent). */
    void
    joinAll()
    {
        for (std::thread &t : _threads) {
            if (t.joinable())
                t.join();
        }
    }

    [[nodiscard]] std::size_t size() const { return _threads.size(); }

  private:
    std::vector<std::thread> _threads;
};

/**
 * Process-wide boolean toggle readable from any thread.
 *
 * Relaxed ordering: the flag is advisory configuration (e.g. log
 * verbosity), never a synchronization point — a reader that misses a
 * concurrent toggle by one message is correct behavior.
 */
class RelaxedFlag
{
  public:
    constexpr explicit RelaxedFlag(bool initial) : _value(initial) {}

    void set(bool value) { _value.store(value, std::memory_order_relaxed); }
    [[nodiscard]] bool get() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> _value;
};

/**
 * Monotonic work-index dispenser for self-scheduling worker pools.
 *
 * Each take() hands out the next index exactly once. Relaxed ordering
 * suffices because the index only partitions work; the data handoff
 * happens through thread creation before and join after.
 */
class TicketCounter
{
  public:
    [[nodiscard]] std::size_t
    take()
    {
        return _next.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::size_t> _next{0};
};

/**
 * The publication index of a single-producer/single-consumer ring.
 *
 * The producer advances the sequence with publish() AFTER writing the
 * slots it covers; release/acquire pairing makes those writes visible
 * to the consumer by the time read() returns the new value. The
 * owning side reads its own sequence with ownerRead() (no ordering
 * needed against itself). This is the only inter-thread edge a
 * ShardPort needs, which is why the SPSC ring can live outside this
 * header without touching raw atomics.
 */
class SpscSequence
{
  public:
    /** Publish a new sequence value (producer side only). */
    void publish(std::uint64_t v)
    {
        _value.store(v, std::memory_order_release);
    }

    /** Observe the latest published value (other side). */
    [[nodiscard]] std::uint64_t read() const
    {
        return _value.load(std::memory_order_acquire);
    }

    /** Re-read a sequence this thread itself publishes. */
    [[nodiscard]] std::uint64_t ownerRead() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/**
 * Reusable rendezvous for a fixed party of threads.
 *
 * arriveAndWait() blocks until all parties of the current generation
 * have arrived, then releases them together; the generation counter
 * makes the barrier immediately reusable for the next epoch. Used by
 * ShardGroup to separate conservative-lookahead epochs; plain
 * mutex + condition_variable because epoch boundaries are rare
 * (one per lookahead window) and correctness beats spin throughput.
 */
class Barrier
{
  public:
    explicit Barrier(std::size_t parties)
        : _parties(parties), _waiting(0), _generation(0)
    {
    }
    Barrier(const Barrier &) = delete;
    Barrier &operator=(const Barrier &) = delete;

    /** Block until every party has arrived at this generation. */
    void
    arriveAndWait()
    {
        std::unique_lock<std::mutex> lock(_mutex);
        std::uint64_t generation = _generation;
        if (++_waiting == _parties) {
            _waiting = 0;
            ++_generation;
            _cv.notify_all();
            return;
        }
        _cv.wait(lock, [&] { return _generation != generation; });
    }

  private:
    std::mutex _mutex;
    std::condition_variable _cv;
    std::size_t _parties;
    std::size_t _waiting;
    std::uint64_t _generation;
};

/**
 * Busy-waiting rendezvous for a fixed party of threads.
 *
 * Same contract as Barrier, but arrivals spin on an atomic generation
 * counter instead of sleeping on a condition variable. Use it when
 * rendezvous are frequent and the wait is short — the sharded System
 * crosses an epoch boundary every lookahead window (tens of
 * nanoseconds of model time, often microseconds of wall time), where
 * a futex sleep/wake per epoch would dominate the run. The release
 * store by the last arrival pairs with the acquire loads of the
 * spinners, so everything written before arriveAndWait() is visible
 * to every party after it returns.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(std::size_t parties)
        : _parties(parties), _arrived(0), _generation(0)
    {
    }
    SpinBarrier(const SpinBarrier &) = delete;
    SpinBarrier &operator=(const SpinBarrier &) = delete;

    /** Block (spinning) until every party has arrived. */
    void
    arriveAndWait()
    {
        const std::uint64_t generation =
            _generation.load(std::memory_order_acquire);
        if (_arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            _parties) {
            _arrived.store(0, std::memory_order_relaxed);
            _generation.store(generation + 1, std::memory_order_release);
            return;
        }
        // Hybrid wait: a short pause-spin covers the common case where
        // the stragglers are running on other cores, then fall back to
        // yield so an oversubscribed party (more workers than cores)
        // cedes the CPU to whoever the barrier is actually waiting on.
        // Pure pause-spinning convoys catastrophically there: each
        // crossing burns full scheduler timeslices per descheduled
        // party.
        unsigned spins = 0;
        while (_generation.load(std::memory_order_acquire) == generation) {
            if (++spins < kSpinsBeforeYield)
                spinPause();
            else
                std::this_thread::yield();
        }
    }

  private:
    static constexpr unsigned kSpinsBeforeYield = 128;

    static void spinPause()
    {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield" ::: "memory");
#else
        std::this_thread::yield();
#endif
    }

    std::size_t _parties;
    std::atomic<std::size_t> _arrived;
    std::atomic<std::uint64_t> _generation;
};

/** Hardware thread count, never zero. */
[[nodiscard]] inline unsigned
hardwareConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1u;
}

} // namespace mellowsim::sync

#endif // MELLOWSIM_SIM_SYNC_HH
