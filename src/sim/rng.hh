/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload address streams,
 * random LLC set selection for the eager scanner, ...) draws from
 * seeded xorshift128+ generators so every experiment is
 * bit-reproducible. std::mt19937 is deliberately avoided: its state is
 * large and its distributions are implementation-defined across
 * standard libraries.
 */

#ifndef MELLOWSIM_SIM_RNG_HH
#define MELLOWSIM_SIM_RNG_HH

#include <cstdint>

namespace mellowsim
{

/**
 * xorshift128+ generator (Vigna, 2014). Fast, 16 bytes of state,
 * passes BigCrush except MatrixRank; more than adequate for workload
 * synthesis.
 */
class Rng
{
  public:
    /** Construct from a seed; any 64-bit value (including 0) is fine. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's multiply-shift. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability @p p. */
    bool nextBool(double p);

    /**
     * Geometrically distributed gap with mean @p mean (>= 0).
     * Used for compute-instruction gaps between memory references.
     */
    std::uint64_t nextGeometric(double mean);

  private:
    std::uint64_t _s0;
    std::uint64_t _s1;

    /** splitmix64 used to expand the single seed into state. */
    static std::uint64_t splitmix64(std::uint64_t &x);
};

} // namespace mellowsim

#endif // MELLOWSIM_SIM_RNG_HH
