/**
 * @file
 * ChannelShard scaffolding for the sharded PDES kernel.
 *
 * A ChannelShard is one conservatively-synchronized partition of a
 * future parallel simulation: it owns its EventQueue, its stats and a
 * set of ShardPort endpoints, and NOTHING it owns is touched by any
 * other thread while a run is in flight (the confinement manifest
 * declares this; mellow-analyze enforces it). ShardGroup drives a set
 * of shards through lookahead-sized epochs:
 *
 *   epoch e covers model time [e*la, (e+1)*la). At the start of the
 *   epoch each shard drains its input ports for messages with
 *   when < (e+1)*la, schedules them into its local queue, runs the
 *   queue to the epoch end, and rendezvouses at a barrier.
 *
 * Why one barrier per epoch is enough: SendTime's mint guarantees a
 * message sent at tick t carries when >= t + la, so anything
 * deliverable inside epoch e (when < (e+1)*la) was sent at
 * t <= when - la < e*la — i.e. during some epoch < e, which completed
 * before the barrier that opened epoch e. Draining at epoch start
 * therefore sees every message it must deliver, and the monotonic
 * ring means it never pops one it must not. The schedule each shard
 * feeds its queue is thus a pure function of the configuration —
 * independent of thread interleaving — which is what makes the
 * serial oracle (jobs <= 1, shards stepped in index order) produce
 * byte-identical fingerprints to the threaded run.
 * tools/determinism_check --threads N audits exactly that, and
 * DESIGN.md §13 writes the argument out in full.
 */

#ifndef MELLOWSIM_SIM_SHARD_HH
#define MELLOWSIM_SIM_SHARD_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/shard_port.hh"
#include "sim/stats.hh"
#include "sim/strong_types.hh"
#include "sim/sync.hh"
#include "sim/types.hh"

namespace mellowsim
{

/**
 * One schedulable partition of a sharded simulation.
 *
 * The epoch driver (runShardEpochs) is payload-agnostic: anything that
 * can run one lookahead-sized epoch and report whether it has drained
 * to quiescence can be driven — the scaffolding ChannelShard below and
 * the real per-channel System partitions (system/sharded.cc) both
 * implement this interface, so the toy ring gate and the production
 * run exercise the same driver.
 */
class ShardTask
{
  public:
    virtual ~ShardTask() = default;

    /**
     * Run one epoch ending at @p end: drain input ports for messages
     * with when < end, then run local events to end. Called with the
     * task confined to one thread; epochs are separated by barriers.
     */
    virtual void runEpoch(Tick end) = 0;

    /**
     * True when this task has no local events pending, its model is
     * idle, and nothing is waiting in its input rings. Sampled only
     * between epoch barriers, where ring snapshots are exact: every
     * in-flight message then shows up in some receiver's pending
     * count, so "all tasks quiescent" implies global quiescence.
     */
    [[nodiscard]] virtual bool quiescent() const = 0;

    /**
     * True when this task wants the whole group stopped regardless of
     * pending work (e.g. the memory capacity floor was crossed).
     */
    [[nodiscard]] virtual bool abortRequested() const { return false; }
};

/** Outcome of one runShardEpochs drive. */
struct EpochOutcome
{
    /** Epochs executed (each task ran exactly this many). */
    std::uint64_t epochs = 0;
    /** Model time the last epoch ran to. */
    Tick endTick = 0;
    /** A task raised abortRequested(). */
    bool aborted = false;
    /** Quiescence mode only: maxTick passed without quiescence. */
    bool hitWall = false;
};

/**
 * Drive @p tasks through lookahead-sized epochs.
 *
 * Two modes:
 *  - fixed horizon (@p until > 0): run ceil(until/la) epochs
 *    unconditionally, one barrier per epoch (the toy-ring/audit mode).
 *  - quiescence (@p until == 0): after each epoch every owner
 *    publishes a per-task status byte (quiescent / abort) and a second
 *    barrier makes the set of bytes common knowledge, so every worker
 *    computes the identical stop decision; stops when all tasks are
 *    quiescent or any aborts, or gives up with hitWall once the next
 *    epoch would cross @p maxTick (> 0).
 *
 * jobs <= 1 is the serial oracle: epochs outermost, tasks stepped in
 * index order — exactly the schedule the threaded mode produces (see
 * the file comment's one-barrier argument), so its fingerprints are
 * the reference. With jobs > 1, task i is owned by worker i % W
 * (W = min(jobs, tasks)) and each worker steps its tasks in ascending
 * index order; ownership is static for the whole run, so task state
 * never migrates mid-run.
 */
EpochOutcome runShardEpochs(const std::vector<ShardTask *> &tasks,
                            Lookahead lookahead, unsigned jobs,
                            Tick until, Tick maxTick = 0);

/** Payload of the scaffolding shard protocol. */
using ShardPayload = std::uint64_t;

/** The concrete port type ChannelShards speak. */
using ShardChannel = ShardPort<ShardPayload>;

/**
 * Per-shard tallies, shard-owned during a run and folded on the
 * coordinating thread afterwards via the stats merge() ops.
 */
struct ShardStats
{
    /** Messages published on output ports. */
    stats::Counter messagesSent;
    /** Messages drained from input ports. */
    stats::Counter messagesReceived;
    /** Delivery events executed (one per received message). */
    stats::Counter deliveries;
    /** Delivery ticks; integer-valued, so merge stays bit-exact. */
    stats::Average deliveryTick;

    /** Fold another shard's tallies into this one (post-join only). */
    void
    merge(const ShardStats &other)
    {
        messagesSent.merge(other.messagesSent);
        messagesReceived.merge(other.messagesReceived);
        deliveries.merge(other.deliveries);
        deliveryTick.merge(other.deliveryTick);
    }
};

/**
 * One shard: an EventQueue plus typed port endpoints, all confined to
 * whichever thread ShardGroup assigns it for the duration of run().
 */
class ChannelShard : public ShardTask
{
  public:
    /** Called at a message's delivery tick; may send() replies. */
    using Handler =
        std::function<void(ChannelShard &, Tick when, ShardPayload)>;

    ChannelShard(unsigned id, Lookahead lookahead)
        : _id(id), _lookahead(lookahead)
    {
    }
    ChannelShard(const ChannelShard &) = delete;
    ChannelShard &operator=(const ChannelShard &) = delete;

    [[nodiscard]] unsigned id() const { return _id; }
    [[nodiscard]] Lookahead lookahead() const { return _lookahead; }
    [[nodiscard]] EventQueue &queue() { return _queue; }
    [[nodiscard]] const ShardStats &stats() const { return _stats; }

    /** Mixed tally of every delivery; the determinism fingerprint. */
    [[nodiscard]] std::uint64_t checksum() const { return _checksum; }

    /** Install the delivery handler (optional; checksum always runs). */
    void setHandler(Handler handler) { _handler = std::move(handler); }

    /** Attach the consumer end of a channel; drained in attach order. */
    std::size_t
    addInput(ShardChannel::Receiver receiver)
    {
        _inputs.push_back(std::move(receiver));
        return _inputs.size() - 1;
    }

    /** Attach the producer end of a channel. */
    std::size_t
    addOutput(ShardChannel::Sender sender)
    {
        _outputs.push_back(std::move(sender));
        return _outputs.size() - 1;
    }

    [[nodiscard]] std::size_t numInputs() const { return _inputs.size(); }
    [[nodiscard]] std::size_t numOutputs() const { return _outputs.size(); }

    /**
     * Publish @p payload on output @p out for the earliest legal
     * delivery tick: now + lookahead, the only SendTime there is.
     */
    void
    send(std::size_t out, ShardPayload payload)
    {
        sendDelayed(out, payload, 0);
    }

    /** send() with @p extra additional ticks of delivery delay. */
    void
    sendDelayed(std::size_t out, ShardPayload payload, Tick extra)
    {
        SendTime when = _queue.curTick() + _lookahead;
        _outputs.at(out).send(when + extra, payload);
        ++_stats.messagesSent;
    }

    /**
     * Run one epoch ending at @p end: drain every input for messages
     * with when < end (attach order, so the schedule is a pure
     * function of the configuration), then run local events to end.
     */
    void runEpoch(Tick end) override;

    /** No local events and no undrained input messages. */
    [[nodiscard]] bool quiescent() const override;

  private:
    void deliver(Tick when, ShardPayload payload);

    unsigned _id;
    Lookahead _lookahead;
    EventQueue _queue;
    ShardStats _stats;
    std::uint64_t _checksum = 0;
    Handler _handler;
    std::vector<ShardChannel::Receiver> _inputs;
    std::vector<ShardChannel::Sender> _outputs;
};

/**
 * Owns a set of shards and the channels between them, and drives them
 * through lookahead-sized epochs — serially in shard-index order
 * (jobs <= 1: the oracle) or with one worker thread per shard and a
 * sync::Barrier between epochs (jobs > 1; the shard count, not jobs,
 * is the parallelism).
 */
class ShardGroup
{
  public:
    explicit ShardGroup(Lookahead lookahead) : _lookahead(lookahead) {}
    ShardGroup(const ShardGroup &) = delete;
    ShardGroup &operator=(const ShardGroup &) = delete;

    /** Create the next shard (id = creation order). */
    ChannelShard &
    addShard()
    {
        _shards.push_back(std::make_unique<ChannelShard>(
            static_cast<unsigned>(_shards.size()), _lookahead));
        return *_shards.back();
    }

    /** Wire a one-way channel from @p src to @p dst. */
    void connect(ChannelShard &src, ChannelShard &dst,
                 std::size_t capacity = ShardChannel::kDefaultCapacity);

    [[nodiscard]] std::size_t numShards() const { return _shards.size(); }
    [[nodiscard]] ChannelShard &shard(std::size_t i)
    {
        return *_shards.at(i);
    }

    /** Step every shard to @p until in lookahead-sized epochs. */
    void run(Tick until, unsigned jobs);

    /** Post-join fold of every shard's tallies. */
    [[nodiscard]] ShardStats mergedStats() const;

    /** Order-independent combination of the shard checksums. */
    [[nodiscard]] std::uint64_t mergedChecksum() const;

  private:
    Lookahead _lookahead;
    std::vector<std::unique_ptr<ChannelShard>> _shards;
    std::vector<std::unique_ptr<ShardChannel>> _channels;
};

} // namespace mellowsim

#endif // MELLOWSIM_SIM_SHARD_HH
