/**
 * @file
 * Containers indexed by strong ordinal types.
 *
 * Per-bank and per-channel state used to live in bare std::vectors,
 * which forced every access through `vec[id.value()]` — an escape from
 * the typed address-space domain (strong_types.hh) repeated at dozens
 * of call sites, each with its own hand-written bounds panic.
 * IndexedVector keeps the id typed all the way to the subscript: the
 * container is keyed by the id type itself, bounds are checked in one
 * place, and a BankId can no longer subscript a channel table.
 *
 * Together with strong_types.hh this file is type infrastructure: the
 * single `.value()` call below is the sanctioned interior of the
 * typed-index bridge, whitelisted in tools/analyze/whitelists.toml and
 * audited by the `value-escape` rule of tools/analyze/mellow_analyze.py.
 */

#ifndef MELLOWSIM_SIM_INDEXED_HH
#define MELLOWSIM_SIM_INDEXED_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/strong_types.hh"

namespace mellowsim
{

/**
 * A std::vector subscripted by a strong ordinal id instead of a raw
 * integer. Iteration (begin/end) runs in index order, so range-for
 * over an IndexedVector is deterministic by construction.
 */
template <typename Id, typename T>
class IndexedVector
{
  public:
    using id_type = Id;
    using value_type = T;

    IndexedVector() = default;
    explicit IndexedVector(std::size_t count) : _v(count) {}
    IndexedVector(std::size_t count, const T &init) : _v(count, init) {}

    [[nodiscard]] std::size_t size() const { return _v.size(); }
    [[nodiscard]] bool empty() const { return _v.empty(); }

    /** Typed subscript; panics when @p id is out of range. */
    [[nodiscard]] T &
    operator[](Id id)
    {
        return _v[checkedIndex(id)];
    }

    [[nodiscard]] const T &
    operator[](Id id) const
    {
        return _v[checkedIndex(id)];
    }

    void assign(std::size_t count, const T &init) { _v.assign(count, init); }
    void push_back(T value) { _v.push_back(std::move(value)); }

    // Index-ordered (deterministic) iteration over the values.
    [[nodiscard]] auto begin() { return _v.begin(); }
    [[nodiscard]] auto end() { return _v.end(); }
    [[nodiscard]] auto begin() const { return _v.begin(); }
    [[nodiscard]] auto end() const { return _v.end(); }

  private:
    [[nodiscard]] std::size_t
    checkedIndex(Id id) const
    {
        // mlint: allow(value-escape): the typed-index container is the
        // one sanctioned bridge from an ordinal id to a raw subscript.
        auto raw = static_cast<std::size_t>(id.value());
        panic_if(raw >= _v.size(),
                 "index %zu out of range (size %zu)", raw, _v.size());
        return raw;
    }

    std::vector<T> _v;
};

} // namespace mellowsim

#endif // MELLOWSIM_SIM_INDEXED_HH
