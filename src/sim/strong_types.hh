/**
 * @file
 * Zero-overhead strong types for mellowsim's address spaces and units.
 *
 * Every access travels through three distinct address spaces —
 *
 *   1. program/logical: byte addresses as the CPU and caches see them
 *      (LogicalAddr), decoded into a bank-local line (BankId,
 *      LineIndex);
 *   2. device lines: the line actually addressed at the device after
 *      the fault model's retirement indirection (DeviceAddr);
 *   3. wear-leveled blocks: the physical block inside the bank array
 *      after the Start-Gap / Security-Refresh rotation (LeveledAddr).
 *
 * All of these, plus energy (Picojoules) and the slow-write latency
 * multiplier (PulseFactor), used to travel as bare std::uint64_t /
 * double, so a swapped argument silently corrupted wear, lifetime and
 * Wear Quota accounting. Wrapping each space in its own type makes
 * cross-space arithmetic and argument swaps compile errors; the
 * tests/compile_fail/ suite pins that property.
 *
 * Numeric conversion between address spaces happens through exactly
 * three sanctioned, named boundaries:
 *
 *   - WearLeveler::level (+ leveledLineOf for unleveled configs):
 *     LineIndex -> LeveledAddr (the controller-owned leveling
 *     rotation on the issue path),
 *   - FaultModel::remap (+ deviceLineOf for fault-free configs and
 *     for WoLFRaM, whose leveler owns the retirement indirection):
 *     LeveledAddr -> DeviceAddr (retirement indirection), and
 *   - WearLeveler::translate: DeviceAddr -> LeveledAddr (the wear
 *     tracker's measurement-path rotation in detailed mode).
 *
 * Everything here is constexpr, trivially copyable and exactly the
 * size of its representation — the types vanish at -O1.
 */

#ifndef MELLOWSIM_SIM_STRONG_TYPES_HH
#define MELLOWSIM_SIM_STRONG_TYPES_HH

#include <compare>
#include <cstddef>
#include <functional>
#include <type_traits>

#include "sim/types.hh"

namespace mellowsim
{

/**
 * An integer-like value from one named ordinal space (an address, an
 * index, an id). Distinct tags are distinct, incompatible types:
 * there is no implicit construction, no implicit conversion back to
 * the representation, and no arithmetic that mixes tags. Offsetting
 * within a space (+/- a raw delta) stays inside the space.
 */
template <typename Tag, typename Rep>
class StrongOrdinal
{
    static_assert(std::is_integral_v<Rep>);

  public:
    using rep_type = Rep;

    constexpr StrongOrdinal() = default;
    constexpr explicit StrongOrdinal(Rep raw) : _raw(raw) {}

    /** The raw representation; the only exit from the type. */
    [[nodiscard]] constexpr Rep value() const { return _raw; }

    /** Offset within the same space. */
    [[nodiscard]] constexpr StrongOrdinal
    operator+(Rep delta) const
    {
        return StrongOrdinal(_raw + delta);
    }

    [[nodiscard]] constexpr StrongOrdinal
    operator-(Rep delta) const
    {
        return StrongOrdinal(_raw - delta);
    }

    /** Distance between two points of the same space. */
    [[nodiscard]] constexpr Rep
    operator-(StrongOrdinal other) const
    {
        return _raw - other._raw;
    }

    constexpr StrongOrdinal &
    operator++()
    {
        ++_raw;
        return *this;
    }

    friend constexpr bool operator==(StrongOrdinal,
                                     StrongOrdinal) = default;
    friend constexpr auto operator<=>(StrongOrdinal,
                                      StrongOrdinal) = default;

  private:
    Rep _raw = 0;
};

/**
 * A double-valued physical quantity (e.g. energy). Additive within
 * its own unit, scalable by dimensionless factors, and never
 * implicitly mixed with bare doubles or other units.
 */
template <typename Tag>
class Quantity
{
  public:
    constexpr Quantity() = default;
    constexpr explicit Quantity(double raw) : _raw(raw) {}

    /** The magnitude in this unit's base scale. */
    [[nodiscard]] constexpr double value() const { return _raw; }

    [[nodiscard]] constexpr Quantity
    operator+(Quantity other) const
    {
        return Quantity(_raw + other._raw);
    }

    [[nodiscard]] constexpr Quantity
    operator-(Quantity other) const
    {
        return Quantity(_raw - other._raw);
    }

    constexpr Quantity &
    operator+=(Quantity other)
    {
        _raw += other._raw;
        return *this;
    }

    constexpr Quantity &
    operator-=(Quantity other)
    {
        _raw -= other._raw;
        return *this;
    }

    /** Scaling by a dimensionless factor. */
    [[nodiscard]] constexpr Quantity
    operator*(double factor) const
    {
        return Quantity(_raw * factor);
    }

    [[nodiscard]] friend constexpr Quantity
    operator*(double factor, Quantity q)
    {
        return Quantity(factor * q._raw);
    }

    [[nodiscard]] constexpr Quantity
    operator/(double divisor) const
    {
        return Quantity(_raw / divisor);
    }

    /** Ratio of two like quantities is dimensionless. */
    [[nodiscard]] constexpr double
    operator/(Quantity other) const
    {
        return _raw / other._raw;
    }

    friend constexpr bool operator==(Quantity, Quantity) = default;
    friend constexpr auto operator<=>(Quantity, Quantity) = default;

  private:
    double _raw = 0.0;
};

// --- Address spaces -------------------------------------------------

/** Program/logical byte address (CPU, caches, controller front end). */
using LogicalAddr = StrongOrdinal<struct LogicalAddrTag, Addr>;

/** Logical block-in-bank index, pre any remapping (decode output). */
using LineIndex = StrongOrdinal<struct LineIndexTag, std::uint64_t>;

/** Device line after the fault model's retirement indirection. */
using DeviceAddr = StrongOrdinal<struct DeviceAddrTag, std::uint64_t>;

/** Physical block after the wear-leveler rotation (Start-Gap/SR). */
using LeveledAddr = StrongOrdinal<struct LeveledAddrTag, std::uint64_t>;

// --- Structural ids -------------------------------------------------

/** Bank index within one channel. */
using BankId = StrongOrdinal<struct BankIdTag, unsigned>;

/** Memory channel index. */
using ChannelId = StrongOrdinal<struct ChannelIdTag, unsigned>;

// --- Units ----------------------------------------------------------

/** Energy in picojoules. */
using Picojoules = Quantity<struct PicojoulesTag>;

/** Interface/controller clock frequency in megahertz. */
using Megahertz = Quantity<struct MegahertzTag>;

/**
 * Write-pulse latency multiplier relative to the normal tWP.
 *
 * Equation 2's endurance gain only exists for pulses at least as long
 * as the baseline, so the factor is clamped to >= 1.0 at
 * construction: a PulseFactor is valid by construction and every
 * consumer (timing, endurance, fault model) may rely on that.
 */
class PulseFactor
{
  public:
    constexpr PulseFactor() = default;
    constexpr explicit PulseFactor(double factor)
        : _factor(factor < 1.0 ? 1.0 : factor)
    {
    }

    /** The multiplier; always >= 1.0. */
    [[nodiscard]] constexpr double value() const { return _factor; }

    /**
     * Scaling a dimensionless magnitude by the factor (pulse-time
     * ratios, probabilities) stays in the typed domain; the result is
     * the scaled magnitude, never a new PulseFactor.
     */
    [[nodiscard]] friend constexpr double
    operator*(double magnitude, PulseFactor f)
    {
        return magnitude * f._factor;
    }

    /** Dividing by the factor (>= 1) only ever shrinks a magnitude. */
    [[nodiscard]] friend constexpr double
    operator/(double magnitude, PulseFactor f)
    {
        return magnitude / f._factor;
    }

    friend constexpr bool operator==(PulseFactor,
                                     PulseFactor) = default;
    friend constexpr auto operator<=>(PulseFactor,
                                      PulseFactor) = default;

  private:
    double _factor = 1.0;
};

// --- Cross-shard time discipline ------------------------------------

/**
 * The conservative-synchronization window of a ChannelShard: the
 * minimum model-time distance between a send and its earliest legal
 * delivery (DESIGN.md §13). A lookahead of zero would collapse the
 * epoch protocol into a message-by-message handshake, so the window
 * is clamped to >= 1 tick at construction; a Lookahead is valid by
 * construction exactly like PulseFactor.
 */
class Lookahead
{
  public:
    constexpr explicit Lookahead(Tick window)
        : _window(window < 1 ? 1 : window)
    {
    }

    /** The window in ticks; always >= 1. */
    [[nodiscard]] constexpr Tick window() const { return _window; }

    friend constexpr bool operator==(Lookahead, Lookahead) = default;
    friend constexpr auto operator<=>(Lookahead, Lookahead) = default;

  private:
    Tick _window;
};

/**
 * The delivery timestamp of a cross-shard message.
 *
 * There is deliberately NO public constructor: the only way to mint a
 * SendTime is `now + Lookahead`, so "every send respects the shard's
 * lookahead" is a fact of the type system, not a runtime check.
 * ShardPort::Sender accepts nothing else, tests/compile_fail/ pins
 * the property, and mellow-analyze's `port-protocol` rule
 * cross-checks every call site so neither frontend can be talked
 * around with a cast.
 */
class SendTime
{
  public:
    /** The raw delivery tick; the only exit from the type. */
    [[nodiscard]] constexpr Tick tick() const { return _when; }

    /**
     * Delay a message further into the receiver's future. Adding raw
     * ticks only ever moves the timestamp later, so the lookahead
     * bound minted at construction still holds.
     */
    [[nodiscard]] constexpr SendTime
    operator+(Tick extra) const
    {
        return SendTime(_when + extra);
    }

    friend constexpr bool operator==(SendTime, SendTime) = default;
    friend constexpr auto operator<=>(SendTime, SendTime) = default;

    /** The sole mint: a sender's current tick plus its lookahead.
     * Declared at namespace scope (not as a hidden friend) because
     * neither operand is a SendTime, so ADL would never find it
     * otherwise. */
    friend constexpr SendTime operator+(Tick now, Lookahead la);

  private:
    constexpr explicit SendTime(Tick when) : _when(when) {}

    Tick _when;
};

[[nodiscard]] constexpr SendTime
operator+(Tick now, Lookahead la)
{
    return SendTime(now + la.window());
}

// The whole point is zero overhead: same size and triviality as the
// raw representations they replace.
static_assert(sizeof(LogicalAddr) == sizeof(Addr));
static_assert(sizeof(DeviceAddr) == sizeof(std::uint64_t));
static_assert(sizeof(BankId) == sizeof(unsigned));
static_assert(sizeof(Picojoules) == sizeof(double));
static_assert(sizeof(PulseFactor) == sizeof(double));
static_assert(sizeof(Lookahead) == sizeof(Tick));
static_assert(sizeof(SendTime) == sizeof(Tick));
static_assert(std::is_trivially_copyable_v<LogicalAddr>);
static_assert(std::is_trivially_copyable_v<SendTime>);
static_assert(std::is_trivially_copyable_v<Picojoules>);
static_assert(std::is_trivially_copyable_v<PulseFactor>);

// --- Named unit-carrying conversions --------------------------------
//
// The ONLY sanctioned entries from external numeric text (device
// config files, CLI flags) into the tick domain. Each conversion
// names its source unit, so a mis-scaled datasheet number is visible
// at the call site; src/config/'s parser exposes nothing but these.

/** A duration given in nanoseconds, rounded to the nearest tick. */
[[nodiscard]] constexpr Tick
ticksFromNanoseconds(double ns)
{
    return static_cast<Tick>(
        ns * static_cast<double>(kNanosecond) + 0.5);
}

/** The period of one cycle of a clock, rounded to the nearest tick. */
[[nodiscard]] constexpr Tick
clockPeriodTicks(Megahertz clk)
{
    // 1 / MHz = microseconds; one microsecond is 1e6 ticks.
    return static_cast<Tick>(
        static_cast<double>(kMicrosecond) / clk.value() + 0.5);
}

/** Block-align a byte address (stays in the logical space). */
[[nodiscard]] constexpr LogicalAddr
blockAlign(LogicalAddr addr)
{
    return LogicalAddr(addr.value() & ~Addr(kBlockSize - 1));
}

/** The block number of a byte address (still logical space). */
[[nodiscard]] constexpr std::uint64_t
blockNumber(LogicalAddr addr)
{
    return addr.value() >> kBlockShift;
}

} // namespace mellowsim

// Ordinals are usable as unordered-container keys (e.g. the MSHR
// table and the queues' block index).
template <typename Tag, typename Rep>
struct std::hash<mellowsim::StrongOrdinal<Tag, Rep>>
{
    std::size_t
    operator()(mellowsim::StrongOrdinal<Tag, Rep> v) const noexcept
    {
        return std::hash<Rep>{}(v.value());
    }
};

#endif // MELLOWSIM_SIM_STRONG_TYPES_HH
