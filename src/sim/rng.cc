#include "sim/rng.hh"

#include <cmath>

namespace mellowsim
{

std::uint64_t
Rng::splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    _s0 = splitmix64(x);
    _s1 = splitmix64(x);
    // xorshift128+ requires a non-zero state.
    if (_s0 == 0 && _s1 == 0)
        _s1 = 1;
}

std::uint64_t
Rng::next()
{
    std::uint64_t x = _s0;
    const std::uint64_t y = _s1;
    _s0 = y;
    x ^= x << 23;
    _s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
    return _s1 + y;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // Lemire's multiply-shift; the tiny modulo bias is irrelevant for
    // workload synthesis.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    if (mean <= 0.0)
        return 0;
    double u = nextDouble();
    // Inverse CDF of the geometric distribution on {0, 1, 2, ...}
    // with success probability 1 / (mean + 1).
    double p = 1.0 / (mean + 1.0);
    double g = std::floor(std::log1p(-u) / std::log1p(-p));
    if (g < 0.0)
        g = 0.0;
    return static_cast<std::uint64_t>(g);
}

} // namespace mellowsim
