/**
 * @file
 * Ring-buffer double-ended FIFO for trivially-copyable elements.
 *
 * Replaces std::deque on the per-bank request FIFOs: one contiguous
 * power-of-two buffer, head/size cursors, O(1) push_back/push_front/
 * pop_front and no steady-state allocation — the buffer doubles on
 * overflow and is then reused forever. std::deque, by contrast,
 * allocates and frees its segment blocks continuously as elements
 * flow through.
 */

#ifndef MELLOWSIM_SIM_INDEX_RING_HH
#define MELLOWSIM_SIM_INDEX_RING_HH

#include <cstddef>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"

namespace mellowsim
{

/** Bounded-growth ring deque; T must be trivially copyable. */
template <typename T>
class RingDeque
{
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    explicit RingDeque(std::size_t initialCapacity = 8)
    {
        std::size_t cap = 4;
        while (cap < initialCapacity)
            cap <<= 1;
        _buf.resize(cap);
    }

    [[nodiscard]] std::size_t size() const { return _size; }
    [[nodiscard]] bool empty() const { return _size == 0; }

    [[nodiscard]] const T &
    front() const
    {
        panic_if(_size == 0, "front() on empty ring");
        return _buf[_head];
    }

    /** Element @p i positions behind the front (0 = front). */
    [[nodiscard]] const T &
    at(std::size_t i) const
    {
        panic_if(i >= _size, "ring index %zu out of range (size %zu)",
                 i, _size);
        return _buf[(_head + i) & (_buf.size() - 1)];
    }

    void
    push_back(T value)
    {
        if (_size == _buf.size())
            grow();
        _buf[(_head + _size) & (_buf.size() - 1)] = value;
        ++_size;
    }

    void
    push_front(T value)
    {
        if (_size == _buf.size())
            grow();
        _head = (_head + _buf.size() - 1) & (_buf.size() - 1);
        _buf[_head] = value;
        ++_size;
    }

    T
    pop_front()
    {
        panic_if(_size == 0, "pop_front() on empty ring");
        T value = _buf[_head];
        _head = (_head + 1) & (_buf.size() - 1);
        --_size;
        return value;
    }

  private:
    void
    grow()
    {
        std::vector<T> bigger(_buf.size() * 2);
        for (std::size_t i = 0; i < _size; ++i)
            bigger[i] = _buf[(_head + i) & (_buf.size() - 1)];
        _buf = std::move(bigger);
        _head = 0;
    }

    std::vector<T> _buf;
    std::size_t _head = 0;
    std::size_t _size = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_SIM_INDEX_RING_HH
