#include "sim/shard.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mellowsim
{

namespace
{

/** splitmix64 finalizer: order-sensitive, avalanche-quality mixing. */
std::uint64_t
mix(std::uint64_t state, std::uint64_t value)
{
    std::uint64_t x = state + 0x9e3779b97f4a7c15ULL + value;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Per-task status byte published between the two quiescence barriers. */
constexpr std::uint8_t kFlagQuiescent = 1u << 0;
constexpr std::uint8_t kFlagAbort = 1u << 1;

std::uint8_t
taskFlags(const ShardTask &task)
{
    std::uint8_t flags = 0;
    if (task.quiescent())
        flags |= kFlagQuiescent;
    if (task.abortRequested())
        flags |= kFlagAbort;
    return flags;
}

/** Fold the published status bytes into the common stop decision. */
bool
stopDecision(const std::vector<std::uint8_t> &flags, bool &aborted)
{
    bool allQuiescent = true;
    for (std::uint8_t f : flags) {
        if ((f & kFlagAbort) != 0)
            aborted = true;
        if ((f & kFlagQuiescent) == 0)
            allQuiescent = false;
    }
    return aborted || allQuiescent;
}

} // namespace

EpochOutcome
runShardEpochs(const std::vector<ShardTask *> &tasks, Lookahead lookahead,
               unsigned jobs, Tick until, Tick maxTick)
{
    EpochOutcome outcome;
    if (tasks.empty())
        return outcome;

    const Tick la = lookahead.window();
    const bool fixedHorizon = until > 0;
    // Every task must execute the same epoch sequence for the barrier
    // counts (and the oracle equivalence) to line up.
    const std::uint64_t horizonEpochs =
        fixedHorizon ? (until + la - 1) / la : 0;

    if (jobs <= 1 || tasks.size() <= 1) {
        // The serial oracle: epochs outermost, tasks in index order.
        // This is exactly the schedule the threaded mode produces (the
        // epoch argument in the file comment proves no message can
        // tell the difference), so its fingerprints are the reference.
        std::vector<std::uint8_t> flags(tasks.size(), 0);
        for (std::uint64_t e = 0;; ++e) {
            if (fixedHorizon && e >= horizonEpochs)
                break;
            const Tick end = (e + 1) * la;
            if (!fixedHorizon && maxTick != 0 && end > maxTick) {
                outcome.hitWall = true;
                break;
            }
            const Tick cappedEnd =
                fixedHorizon ? std::min<Tick>(end, until) : end;
            for (ShardTask *task : tasks)
                task->runEpoch(cappedEnd);
            ++outcome.epochs;
            outcome.endTick = cappedEnd;
            if (!fixedHorizon) {
                for (std::size_t i = 0; i < tasks.size(); ++i)
                    flags[i] = taskFlags(*tasks[i]);
                if (stopDecision(flags, outcome.aborted))
                    break;
            }
        }
        return outcome;
    }

    const std::size_t workers =
        std::min<std::size_t>(jobs, tasks.size());
    sync::SpinBarrier barrier(workers);
    // Status bytes are double-buffered by epoch parity: epoch e's
    // bytes live in flags[e % 2], written by each task's owner between
    // barrier A(e) (all epoch-e sends published, so ring snapshots are
    // exact) and barrier B(e), and read by every worker after B(e).
    // The next write to the same buffer happens after A(e + 2), which
    // every reader's arrival precedes — so plain bytes suffice, the
    // barriers carry the ordering.
    std::vector<std::uint8_t> flags[2] = {
        std::vector<std::uint8_t>(tasks.size(), 0),
        std::vector<std::uint8_t>(tasks.size(), 0),
    };
    // One outcome slot per worker; worker 0's survives. All workers
    // compute identical stop decisions, so the slots only differ in
    // being written by different threads.
    std::vector<EpochOutcome> outcomes(workers);

    auto worker = [&](std::size_t w) {
        EpochOutcome &mine = outcomes[w];
        for (std::uint64_t e = 0;; ++e) {
            if (fixedHorizon && e >= horizonEpochs)
                break;
            const Tick end = (e + 1) * la;
            if (!fixedHorizon && maxTick != 0 && end > maxTick) {
                mine.hitWall = true;
                break;
            }
            const Tick cappedEnd =
                fixedHorizon ? std::min<Tick>(end, until) : end;
            // Static ownership: task i belongs to worker i % workers,
            // stepped in ascending index order.
            for (std::size_t i = w; i < tasks.size(); i += workers)
                tasks[i]->runEpoch(cappedEnd);
            ++mine.epochs;
            mine.endTick = cappedEnd;
            barrier.arriveAndWait(); // A: epoch-e work and sends done
            if (fixedHorizon)
                continue;
            std::vector<std::uint8_t> &epochFlags = flags[e % 2];
            for (std::size_t i = w; i < tasks.size(); i += workers)
                epochFlags[i] = taskFlags(*tasks[i]);
            barrier.arriveAndWait(); // B: status bytes published
            if (stopDecision(epochFlags, mine.aborted))
                break;
        }
    };

    {
        sync::ThreadGroup threads(workers);
        for (std::size_t w = 0; w < workers; ++w)
            threads.spawn([&worker, w] { worker(w); });
        // ThreadGroup's destructor joins, so an exception from
        // spawn() cannot leak already-running workers.
    }
    return outcomes[0];
}

void
ChannelShard::deliver(Tick when, ShardPayload payload)
{
    ++_stats.deliveries;
    _stats.deliveryTick.sample(static_cast<double>(when));
    _checksum = mix(_checksum, mix(when, payload));
    if (_handler)
        _handler(*this, when, payload);
}

void
ChannelShard::runEpoch(Tick end)
{
    for (ShardChannel::Receiver &input : _inputs) {
        input.drainUntil(end, [this](Tick when, ShardPayload payload) {
            ++_stats.messagesReceived;
            _queue.schedule(when, [this, when, payload] {
                deliver(when, payload);
            });
        });
    }
    _queue.run(end);
}

bool
ChannelShard::quiescent() const
{
    if (!_queue.empty())
        return false;
    for (const ShardChannel::Receiver &input : _inputs) {
        if (input.pending() != 0)
            return false;
    }
    return true;
}

void
ShardGroup::connect(ChannelShard &src, ChannelShard &dst,
                    std::size_t capacity)
{
    _channels.push_back(std::make_unique<ShardChannel>(capacity));
    ShardChannel &channel = *_channels.back();
    src.addOutput(channel.sender());
    dst.addInput(channel.receiver());
}

void
ShardGroup::run(Tick until, unsigned jobs)
{
    if (_shards.empty() || until == 0)
        return;
    std::vector<ShardTask *> tasks;
    tasks.reserve(_shards.size());
    for (auto &shard : _shards)
        tasks.push_back(shard.get());
    // One worker per shard, as before: the shard count, not jobs, is
    // the parallelism of the scaffolding group.
    const unsigned workers =
        jobs <= 1 ? 1u : static_cast<unsigned>(_shards.size());
    runShardEpochs(tasks, _lookahead, workers, until);
}

ShardStats
ShardGroup::mergedStats() const
{
    ShardStats merged;
    for (const auto &shard : _shards)
        merged.merge(shard->stats());
    return merged;
}

std::uint64_t
ShardGroup::mergedChecksum() const
{
    // Re-mixed in shard-id order, so the result is a deterministic
    // function of the per-shard checksums regardless of which thread
    // ran which shard.
    std::uint64_t combined = 0;
    for (const auto &shard : _shards)
        combined = mix(combined, shard->checksum());
    return combined;
}

} // namespace mellowsim
