#include "sim/shard.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mellowsim
{

namespace
{

/** splitmix64 finalizer: order-sensitive, avalanche-quality mixing. */
std::uint64_t
mix(std::uint64_t state, std::uint64_t value)
{
    std::uint64_t x = state + 0x9e3779b97f4a7c15ULL + value;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

void
ChannelShard::deliver(Tick when, ShardPayload payload)
{
    ++_stats.deliveries;
    _stats.deliveryTick.sample(static_cast<double>(when));
    _checksum = mix(_checksum, mix(when, payload));
    if (_handler)
        _handler(*this, when, payload);
}

void
ChannelShard::runEpoch(Tick end)
{
    for (ShardChannel::Receiver &input : _inputs) {
        input.drainUntil(end, [this](Tick when, ShardPayload payload) {
            ++_stats.messagesReceived;
            _queue.schedule(when, [this, when, payload] {
                deliver(when, payload);
            });
        });
    }
    _queue.run(end);
}

void
ShardGroup::connect(ChannelShard &src, ChannelShard &dst,
                    std::size_t capacity)
{
    _channels.push_back(std::make_unique<ShardChannel>(capacity));
    ShardChannel &channel = *_channels.back();
    src.addOutput(channel.sender());
    dst.addInput(channel.receiver());
}

void
ShardGroup::run(Tick until, unsigned jobs)
{
    if (_shards.empty() || until == 0)
        return;

    const Tick la = _lookahead.window();
    // Every shard must execute the same epoch sequence for the barrier
    // counts (and the oracle equivalence) to line up.
    const std::uint64_t epochs = (until + la - 1) / la;

    auto stepShard = [&](ChannelShard &shard, std::uint64_t epoch) {
        Tick end = std::min<Tick>((epoch + 1) * la, until);
        shard.runEpoch(end);
    };

    if (jobs <= 1 || _shards.size() <= 1) {
        // The serial oracle: epochs outermost, shards in index order.
        // This is exactly the schedule the threaded mode produces (the
        // epoch argument above proves no message can tell the
        // difference), so its fingerprints are the reference.
        for (std::uint64_t e = 0; e < epochs; ++e) {
            for (auto &shard : _shards)
                stepShard(*shard, e);
        }
        return;
    }

    sync::Barrier barrier(_shards.size());
    sync::ThreadGroup threads(_shards.size());
    for (auto &shardPtr : _shards) {
        // Capture the shard by pointer value: the loop variable dies
        // while the worker is still running.
        ChannelShard *shard = shardPtr.get();
        threads.spawn([shard, epochs, &stepShard, &barrier] {
            for (std::uint64_t e = 0; e < epochs; ++e) {
                stepShard(*shard, e);
                barrier.arriveAndWait();
            }
        });
    }
    threads.joinAll();
}

ShardStats
ShardGroup::mergedStats() const
{
    ShardStats merged;
    for (const auto &shard : _shards)
        merged.merge(shard->stats());
    return merged;
}

std::uint64_t
ShardGroup::mergedChecksum() const
{
    // Re-mixed in shard-id order, so the result is a deterministic
    // function of the per-shard checksums regardless of which thread
    // ran which shard.
    std::uint64_t combined = 0;
    for (const auto &shard : _shards)
        combined = mix(combined, shard->checksum());
    return combined;
}

} // namespace mellowsim
