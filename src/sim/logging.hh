/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic()  — a simulator bug; never the user's fault. Throws
 *            PanicError (so tests can assert on it) unless
 *            Logger::abortOnPanic() is set, in which case it aborts.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments). Throws FatalError.
 * warn()   — something is suspicious but the simulation continues.
 * inform() — normal operating status.
 */

#ifndef MELLOWSIM_SIM_LOGGING_HH
#define MELLOWSIM_SIM_LOGGING_HH

#include <cstdio>
#include <stdexcept>
#include <string>

#include "sim/sync.hh"

namespace mellowsim
{

/** Error thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Error thrown by fatal(): the user asked for something impossible. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Process-wide logging configuration. Safe to query and toggle from
 * any thread; output from parallel sweep workers is serialized by a
 * mutex internal to logging.cc. */
class Logger
{
  public:
    /** Suppress warn()/inform() output (useful in tests and sweeps). */
    static void setQuiet(bool quiet);
    static bool quiet();

  private:
    static sync::RelaxedFlag _quiet;
};

/** Format a message with printf semantics into a std::string. */
std::string logFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and throw PanicError. */
// mlint: allow(raw-addr-param): source location, not a memory address
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Report an unrecoverable user error and throw FatalError. */
// mlint: allow(raw-addr-param): source location, not a memory address
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr (unless quiet). */
void warnImpl(const std::string &msg);

/** Print an informational message to stdout (unless quiet). */
void informImpl(const std::string &msg);

} // namespace mellowsim

#define panic(...) \
    ::mellowsim::panicImpl(__FILE__, __LINE__, \
                           ::mellowsim::logFormat(__VA_ARGS__))

#define fatal(...) \
    ::mellowsim::fatalImpl(__FILE__, __LINE__, \
                           ::mellowsim::logFormat(__VA_ARGS__))

#define warn(...) \
    ::mellowsim::warnImpl(::mellowsim::logFormat(__VA_ARGS__))

#define inform(...) \
    ::mellowsim::informImpl(::mellowsim::logFormat(__VA_ARGS__))

/** panic() unless the given condition holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) { \
            panic(__VA_ARGS__); \
        } \
    } while (0)

/** fatal() unless the given condition holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) { \
            fatal(__VA_ARGS__); \
        } \
    } while (0)

#endif // MELLOWSIM_SIM_LOGGING_HH
