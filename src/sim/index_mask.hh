/**
 * @file
 * Bitmask over a strong ordinal index space.
 *
 * The controller's scheduling pass used to probe every bank on every
 * attempt; an IndexMask maintained incrementally by the request
 * queues lets it visit only banks that can possibly have work.
 * Iteration (forEach) runs in ascending index order, so replacing a
 * full scan with a mask walk is deterministic by construction and
 * visits banks in exactly the order the full scan did.
 *
 * Like IndexedVector, this is typed-index infrastructure: the single
 * .value() escape below is the sanctioned bridge from an ordinal id
 * to a raw bit position (whitelisted in tools/analyze/whitelists.toml).
 */

#ifndef MELLOWSIM_SIM_INDEX_MASK_HH
#define MELLOWSIM_SIM_INDEX_MASK_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace mellowsim
{

/** A fixed-size set of ordinal ids backed by 64-bit words. */
template <typename Id>
class IndexMask
{
  public:
    IndexMask() = default;

    explicit IndexMask(std::size_t count)
        : _words((count + 63) / 64), _bits(count)
    {
    }

    /** Number of indexable ids. */
    [[nodiscard]] std::size_t sizeBits() const { return _bits; }

    [[nodiscard]] bool
    test(Id id) const
    {
        std::size_t raw = checkedIndex(id);
        return (_words[raw >> 6] >> (raw & 63)) & 1u;
    }

    void
    set(Id id)
    {
        std::size_t raw = checkedIndex(id);
        _words[raw >> 6] |= std::uint64_t{1} << (raw & 63);
    }

    void
    clear(Id id)
    {
        std::size_t raw = checkedIndex(id);
        _words[raw >> 6] &= ~(std::uint64_t{1} << (raw & 63));
    }

    [[nodiscard]] bool
    any() const
    {
        for (std::uint64_t w : _words) {
            if (w != 0)
                return true;
        }
        return false;
    }

    /** Union; both masks must cover the same id range. */
    IndexMask &
    operator|=(const IndexMask &other)
    {
        panic_if(other._bits != _bits,
                 "IndexMask union over mismatched sizes (%zu vs %zu)",
                 _bits, other._bits);
        for (std::size_t w = 0; w < _words.size(); ++w)
            _words[w] |= other._words[w];
        return *this;
    }

    /** Visit every set id in ascending index order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t w = 0; w < _words.size(); ++w) {
            std::uint64_t bits = _words[w];
            while (bits != 0) {
                unsigned bit =
                    static_cast<unsigned>(std::countr_zero(bits));
                fn(Id(static_cast<typename Id::rep_type>(w * 64 +
                                                         bit)));
                bits &= bits - 1;
            }
        }
    }

  private:
    [[nodiscard]] std::size_t
    checkedIndex(Id id) const
    {
        // mlint: allow(value-escape): the typed-index mask is a
        // sanctioned bridge from an ordinal id to a raw bit position.
        auto raw = static_cast<std::size_t>(id.value());
        panic_if(raw >= _bits, "mask index %zu out of range (size %zu)",
                 raw, _bits);
        return raw;
    }

    std::vector<std::uint64_t> _words;
    std::size_t _bits = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_SIM_INDEX_MASK_HH
