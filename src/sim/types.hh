/**
 * @file
 * Fundamental simulator types and unit helpers.
 *
 * The whole simulator runs on a single 64-bit tick counter with a
 * resolution of one picosecond. One picosecond exactly represents both
 * the 0.5 ns CPU clock (2 GHz, Table I of the paper) and the 2.5 ns
 * memory clock (400 MHz, Table II), so no clock-domain rounding is ever
 * needed.
 */

#ifndef MELLOWSIM_SIM_TYPES_HH
#define MELLOWSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace mellowsim
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Physical (or logical, pre-wear-leveling) memory address in bytes. */
using Addr = std::uint64_t;

/** An always-invalid tick, used as "not scheduled / never". */
constexpr Tick MaxTick = std::numeric_limits<Tick>::max();

/** Unit multipliers: everything is expressed in picoseconds. */
constexpr Tick kPicosecond = 1;
constexpr Tick kNanosecond = 1000 * kPicosecond;
constexpr Tick kMicrosecond = 1000 * kNanosecond;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;

/** Convert a tick count to (double) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert a tick count to (double) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kNanosecond);
}

/** Seconds in a (Julian) year, used for lifetime reporting. */
constexpr double kSecondsPerYear = 365.25 * 24.0 * 3600.0;

/** Cache line / resistive memory write-block size in bytes (Table I/II). */
constexpr unsigned kBlockSize = 64;
constexpr unsigned kBlockShift = 6;

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2 for a power-of-two value. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

} // namespace mellowsim

#endif // MELLOWSIM_SIM_TYPES_HH
