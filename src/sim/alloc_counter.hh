/**
 * @file
 * Global heap-allocation counter.
 *
 * When compiled in (MELLOWSIM_ALLOC_COUNTER_ENABLED, implied by
 * MELLOWSIM_CHECKS and on in the release-lto perf preset), the global
 * operator new/delete family is replaced with counting wrappers over
 * malloc/free. The counters let the perf harness (bench/micro_kernel)
 * prove the zero-steady-state-allocation property of the event kernel
 * and request path: sample the counter around a steady-state loop and
 * assert the delta is zero.
 *
 * The wrappers route through malloc, so AddressSanitizer's malloc
 * interception (and leak checking) keeps working in checks builds.
 */

#ifndef MELLOWSIM_SIM_ALLOC_COUNTER_HH
#define MELLOWSIM_SIM_ALLOC_COUNTER_HH

#include <cstdint>

namespace mellowsim::alloccounter
{

/** True when the counting operator new/delete are compiled in. */
[[nodiscard]] bool enabled();

/** Global operator-new calls since process start (0 when disabled). */
[[nodiscard]] std::uint64_t allocations();

/** Global operator-delete calls on non-null pointers since start. */
[[nodiscard]] std::uint64_t deallocations();

} // namespace mellowsim::alloccounter

#endif // MELLOWSIM_SIM_ALLOC_COUNTER_HH
