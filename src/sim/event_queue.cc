#include "sim/event_queue.hh"

#include <new>

namespace mellowsim
{

EventQueue::~EventQueue()
{
    // Destroy callables still pending at teardown, then drain the
    // out-of-line pool. Slots themselves die with _chunks.
    for (std::uint32_t i = 0; i < _slotCount; ++i) {
        Slot &s = slotRef(i);
        if (s.invoke != nullptr)
            disarmSlot(s);
    }
    for (unsigned b = 0; b < kOutlineBuckets; ++b) {
        OutlineBlock *block = _outlineFree[b];
        while (block != nullptr) {
            OutlineBlock *next = block->next;
            ::operator delete(static_cast<void *>(block));
            block = next;
        }
        _outlineFree[b] = nullptr;
    }
}

std::uint32_t
EventQueue::acquireSlot()
{
    if (_freeHead != kNoSlot) {
        std::uint32_t index = _freeHead;
        _freeHead = slotRef(index).nextFree;
        return index;
    }
    panic_if(_slotCount > kSlotMask,
             "event pool exceeds %llu concurrent events",
             static_cast<unsigned long long>(kSlotMask) + 1);
    if ((_slotCount & (kChunkSlots - 1)) == 0)
        _chunks.push_back(std::make_unique<Slot[]>(kChunkSlots));
    return _slotCount++;
}

void
EventQueue::releaseSlot(std::uint32_t index)
{
    Slot &s = slotRef(index);
    s.nextFree = _freeHead;
    _freeHead = index;
}

void
EventQueue::disarmSlot(Slot &s)
{
    void *obj = s.outline != nullptr ? s.outline
                                     : static_cast<void *>(s.storage);
    if (s.destroy != nullptr)
        s.destroy(obj);
    if (s.outline != nullptr) {
        outlineRelease(s.outline, s.outlineBucket);
        s.outline = nullptr;
    }
    s.invoke = nullptr;
    s.destroy = nullptr;
    s.pendingKey = 0;
}

bool
EventQueue::deschedule(EventHandle handle)
{
    if (!scheduled(handle))
        return false;
    std::uint32_t slot = slotOf(handle._key);
    disarmSlot(slotRef(slot));
    releaseSlot(slot);
    --_numPending;
    maybeCompact();
    return true;
}

void
EventQueue::popTop()
{
    _heap.front() = _heap.back();
    _heap.pop_back();
    if (!_heap.empty())
        heapSiftDown(0);
}

void
EventQueue::fireSlot(Slot &s, std::uint32_t index)
{
    auto invoke = s.invoke;
    auto destroy = s.destroy;
    void *outline = s.outline;
    unsigned bucket = s.outlineBucket;
    void *obj = outline != nullptr ? outline
                                   : static_cast<void *>(s.storage);

    // Disarm before invoking: during the callback the handle already
    // reports unscheduled and a deschedule() through it is a no-op.
    // The slot is released only after the callable returns, so a
    // reentrant schedule() cannot overwrite the running callable.
    s.invoke = nullptr;
    s.destroy = nullptr;
    s.outline = nullptr;
    s.pendingKey = 0;
    --_numPending;

    invoke(obj);

    if (destroy != nullptr)
        destroy(obj);
    if (outline != nullptr)
        outlineRelease(outline, bucket);
    releaseSlot(index);
}

void
EventQueue::maybeCompact()
{
    // All pending events own exactly one heap entry, so the stale
    // (lazily-cancelled) fraction is heap size minus pending count.
    if (_heap.size() < kCompactMinEntries ||
        _heap.size() - _numPending <= _heap.size() / 2) {
        return;
    }
    std::erase_if(_heap,
                  [this](const Entry &e) { return !entryLive(e); });
    if (_heap.size() > 1) {
        for (std::size_t i = ((_heap.size() - 2) >> 1) + 1; i-- > 0;)
            heapSiftDown(i);
    }
}

bool
EventQueue::step()
{
    while (!_heap.empty()) {
        Entry top = _heap.front();
        popTop();
        Slot &s = slotRef(slotOf(top.key));
        if (s.pendingKey != top.key)
            continue; // cancelled: discarded lazily
        _curTick = top.when;
        fireSlot(s, slotOf(top.key));
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick stopAt)
{
    std::uint64_t executed = 0;
    while (!_heap.empty()) {
        Entry top = _heap.front();
        Slot &s = slotRef(slotOf(top.key));
        if (s.pendingKey != top.key) {
            popTop();
            continue;
        }
        if (top.when >= stopAt) {
            _curTick = stopAt;
            break;
        }
        popTop();
        _curTick = top.when;
        fireSlot(s, slotOf(top.key));
        ++executed;
    }
    if (_heap.empty() && stopAt != MaxTick && _curTick < stopAt)
        _curTick = stopAt;
    return executed;
}

void *
EventQueue::outlineAcquire(std::size_t bytes, unsigned *bucket)
{
    std::size_t size = kOutlineBaseBytes;
    unsigned b = 0;
    while (size < bytes && b + 1 < kOutlineBuckets) {
        size <<= 1;
        ++b;
    }
    panic_if(size < bytes,
             "event callable of %zu bytes exceeds the outline pool's "
             "largest size class (%zu)",
             bytes, size);
    *bucket = b;
    if (_outlineFree[b] != nullptr) {
        OutlineBlock *block = _outlineFree[b];
        _outlineFree[b] = block->next;
        return static_cast<void *>(block);
    }
    return ::operator new(size);
}

void
EventQueue::outlineRelease(void *block, unsigned bucket)
{
    auto *node = static_cast<OutlineBlock *>(block);
    node->next = _outlineFree[bucket];
    _outlineFree[bucket] = node;
}

} // namespace mellowsim
