#include "sim/event_queue.hh"

namespace mellowsim
{

EventId
EventQueue::schedule(Tick when, EventAction action)
{
    panic_if(when < _curTick,
             "scheduling into the past: when=%llu cur=%llu",
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(_curTick));
    EventId id = _nextId++;
    _heap.push(Entry{when, id});
    _actions.emplace(id, std::move(action));
    ++_numPending;
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    auto it = _actions.find(id);
    if (it == _actions.end())
        return false;
    _actions.erase(it);
    --_numPending;
    // The heap entry remains and is skipped lazily when popped.
    return true;
}

bool
EventQueue::scheduled(EventId id) const
{
    return _actions.find(id) != _actions.end();
}

bool
EventQueue::step()
{
    while (!_heap.empty()) {
        Entry top = _heap.top();
        auto it = _actions.find(top.id);
        if (it == _actions.end()) {
            // Cancelled event: discard lazily.
            _heap.pop();
            continue;
        }
        _heap.pop();
        _curTick = top.when;
        EventAction action = std::move(it->second);
        _actions.erase(it);
        --_numPending;
        action();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick stopAt)
{
    std::uint64_t executed = 0;
    while (!_heap.empty()) {
        Entry top = _heap.top();
        if (_actions.find(top.id) == _actions.end()) {
            _heap.pop();
            continue;
        }
        if (top.when >= stopAt) {
            _curTick = stopAt;
            break;
        }
        step();
        ++executed;
    }
    if (_heap.empty() && stopAt != MaxTick && _curTick < stopAt)
        _curTick = stopAt;
    return executed;
}

} // namespace mellowsim
