/**
 * @file
 * Lightweight statistics primitives.
 *
 * Components expose their statistics as plain members of these types;
 * the System gathers them into a SimReport at the end of a run. The
 * types deliberately stay simple (no global registry) so that unit
 * tests can instantiate components in isolation.
 */

#ifndef MELLOWSIM_SIM_STATS_HH
#define MELLOWSIM_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mellowsim
{
namespace stats
{

/**
 * Monotonically increasing event count.
 *
 * Like every stats primitive here, a Counter is shard-owned state in
 * the concurrency model (DESIGN.md §11): only its owning shard samples
 * it during a run, and cross-shard aggregation happens via merge() on
 * the coordinating thread after the workers are joined — the join is
 * the synchronization point, so the types themselves stay lock-free
 * and the hot path stays a plain increment.
 */
class Counter
{
  public:
    void operator++() { ++_value; }
    void operator++(int) { ++_value; }
    void operator+=(std::uint64_t v) { _value += v; }
    [[nodiscard]] std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

    /** Fold another shard's tally into this one (post-join only). */
    void merge(const Counter &other) { _value += other._value; }

  private:
    std::uint64_t _value = 0;
};

/** Running mean / min / max of a sampled quantity. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    [[nodiscard]] double mean() const { return _count ? _sum / _count : 0.0; }
    [[nodiscard]] double sum() const { return _sum; }
    [[nodiscard]] std::uint64_t count() const { return _count; }
    [[nodiscard]] double min() const { return _count ? _min : 0.0; }
    [[nodiscard]] double max() const { return _count ? _max : 0.0; }

    void
    reset()
    {
        _sum = 0.0;
        _count = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

    /** Fold another shard's samples into this one (post-join only).
     * Exact for sum/count/min/max; mean() over the merged state equals
     * the mean over the concatenated sample streams. */
    void
    merge(const Average &other)
    {
        if (other._count == 0)
            return;
        _sum += other._sum;
        _count += other._count;
        _min = std::min(_min, other._min);
        _max = std::max(_max, other._max);
    }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * Accumulates how long a boolean condition was true ("busy") over
 * simulated time; used for bank utilisation and drain-time fractions.
 *
 * Overlapping busy intervals are merged by construction: callers mark
 * busy-until using markBusyUntil(), which extends the current interval.
 */
class BusyTracker
{
  public:
    /** Declare the resource busy from @p from until @p until. */
    void
    markBusyUntil(Tick from, Tick until)
    {
        if (until <= from)
            return;
        if (from >= _busyUntil) {
            // Disjoint new interval.
            _busyTicks += until - from;
            _busyUntil = until;
        } else if (until > _busyUntil) {
            // Extends the current interval.
            _busyTicks += until - _busyUntil;
            _busyUntil = until;
        }
        // Else fully contained: nothing to add.
    }

    /**
     * Truncate accounting at @p now: any accrued busy time beyond the
     * current tick (e.g. an in-flight write when the simulation ends,
     * or a cancelled write) is given back.
     */
    void
    truncateAt(Tick now)
    {
        if (_busyUntil > now) {
            _busyTicks -= _busyUntil - now;
            _busyUntil = now;
        }
    }

    [[nodiscard]] Tick busyTicks() const { return _busyTicks; }

    /** Fraction of [0, total] the resource was busy. */
    [[nodiscard]] double
    utilization(Tick total) const
    {
        return total ? static_cast<double>(std::min(_busyTicks, total)) /
                           static_cast<double>(total)
                     : 0.0;
    }

    [[nodiscard]] Tick busyUntil() const { return _busyUntil; }

  private:
    Tick _busyTicks = 0;
    Tick _busyUntil = 0;
};

/** Fixed-bucket histogram over a [0, max) range. */
class Histogram
{
  public:
    Histogram(double max, unsigned buckets)
        : _max(max), _counts(buckets, 0)
    {
    }

    void
    sample(double v)
    {
        ++_total;
        if (v < 0.0)
            v = 0.0;
        auto idx = static_cast<std::size_t>(
            v / _max * static_cast<double>(_counts.size()));
        if (idx >= _counts.size())
            idx = _counts.size() - 1;
        ++_counts[idx];
    }

    [[nodiscard]] std::uint64_t total() const { return _total; }
    [[nodiscard]] const std::vector<std::uint64_t> &buckets() const { return _counts; }
    [[nodiscard]] double max() const { return _max; }

    /** Fold another shard's histogram into this one (post-join only).
     * Panics if the bucket shapes differ: merging histograms sampled
     * over different ranges would silently misbin. */
    void merge(const Histogram &other);

  private:
    double _max;
    std::uint64_t _total = 0;
    std::vector<std::uint64_t> _counts;
};

/** Geometric mean of a set of strictly positive values. */
double geoMean(const std::vector<double> &values);

} // namespace stats
} // namespace mellowsim

#endif // MELLOWSIM_SIM_STATS_HH
