#include "sim/stats.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mellowsim
{
namespace stats
{

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values) {
        panic_if(v <= 0.0, "geoMean of non-positive value %f", v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace stats
} // namespace mellowsim
