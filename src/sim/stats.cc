#include "sim/stats.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mellowsim
{
namespace stats
{

void
Histogram::merge(const Histogram &other)
{
    panic_if(_counts.size() != other._counts.size() || _max != other._max,
             "histogram merge shape mismatch: [0,%f)x%zu vs [0,%f)x%zu",
             _max, _counts.size(), other._max, other._counts.size());
    _total += other._total;
    for (std::size_t i = 0; i < _counts.size(); ++i)
        _counts[i] += other._counts[i];
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values) {
        panic_if(v <= 0.0, "geoMean of non-positive value %f", v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace stats
} // namespace mellowsim
