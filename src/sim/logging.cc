#include "sim/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

#include "sim/sync.hh"

namespace mellowsim
{

sync::RelaxedFlag Logger::_quiet{false};

namespace
{

/** Serializes message emission so lines from parallel sweep workers
 * interleave whole, never mid-line. Guards the emit helpers below,
 * not the streams themselves: each message is a single fprintf. */
sync::Mutex outputMutex;

void
emitLine(std::FILE *stream, const char *prefix, const std::string &msg)
{
    sync::LockGuard guard(outputMutex);
    std::fprintf(stream, "%s%s\n", prefix, msg.c_str());
}

} // namespace

void
Logger::setQuiet(bool quiet)
{
    _quiet.set(quiet);
}

bool
Logger::quiet()
{
    return _quiet.get();
}

std::string
logFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string("<format error>");
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full =
        logFormat("panic: %s (%s:%d)", msg.c_str(), file, line);
    emitLine(stderr, "", full);
    throw PanicError(full);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full =
        logFormat("fatal: %s (%s:%d)", msg.c_str(), file, line);
    emitLine(stderr, "", full);
    throw FatalError(full);
}

void
warnImpl(const std::string &msg)
{
    if (!Logger::quiet())
        emitLine(stderr, "warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (!Logger::quiet())
        emitLine(stdout, "info: ", msg);
}

} // namespace mellowsim
