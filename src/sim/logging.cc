#include "sim/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace mellowsim
{

bool Logger::_quiet = false;

void
Logger::setQuiet(bool quiet)
{
    _quiet = quiet;
}

bool
Logger::quiet()
{
    return _quiet;
}

std::string
logFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string("<format error>");
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full =
        logFormat("panic: %s (%s:%d)", msg.c_str(), file, line);
    std::fprintf(stderr, "%s\n", full.c_str());
    throw PanicError(full);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full =
        logFormat("fatal: %s (%s:%d)", msg.c_str(), file, line);
    std::fprintf(stderr, "%s\n", full.c_str());
    throw FatalError(full);
}

void
warnImpl(const std::string &msg)
{
    if (!Logger::quiet())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!Logger::quiet())
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace mellowsim
