/**
 * @file
 * Figure 7: distribution of LLC hits over LRU stack positions and the
 * useless-position cut chosen by the Section IV-B1 profiler.
 *
 * For each workload, prints the fraction of LLC requests that hit at
 * each stack position (position 0 = MRU) and the stack position from
 * which the profiler declares lines "useless" at the end of the run.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig07", "LLC hit distribution over LRU stack positions",
           "tail positions collect <1/32 of requests and become eager "
           "write-back candidates");

    std::printf("%-12s", "workload");
    for (unsigned pos = 0; pos < 16; ++pos)
        std::printf(" p%-5u", pos);
    std::printf(" miss%%  useless_from\n");

    for (const std::string &name : workloadNames()) {
        // Eager machinery on so the profiler verdict is the live one
        // the scanner would use.
        SystemConfig cfg = makeConfig(name, beMellow().withSC());
        System sys(cfg);
        sys.run();

        const Llc &llc = sys.hierarchy().llc();
        const auto &hits = llc.cumulativeHitsByPos();
        double total = static_cast<double>(llc.stats().hits.value() +
                                           llc.stats().misses.value());
        if (total == 0.0)
            total = 1.0;

        std::printf("%-12s", name.c_str());
        for (std::uint64_t h : hits) {
            std::printf(" %-6.3f", static_cast<double>(h) / total);
        }
        std::printf(" %-5.1f  %u\n",
                    100.0 *
                        static_cast<double>(llc.stats().misses.value()) /
                        total,
                    llc.profiler().uselessFrom());
    }

    std::printf("\n(position 0 is MRU; 'useless_from' is the eager LRU "
                "position after the final sample period)\n");
    return 0;
}
