/**
 * @file
 * Figure 10: IPC of systems with different write policies.
 *
 * Paper observations to check: E-Norm+NC is fastest on most workloads
 * but loses on lbm; E-Slow+SC is ~0.77x geomean (0.46x on lbm);
 * BE-Mellow+SC lands at ~1.06x of Norm.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig10", "IPC by write policy (Table III matrix)",
           "BE-Mellow+SC ~1.06x Norm geomean; E-Slow+SC ~0.77x "
           "(worst 0.46x on lbm)");

    const auto &wl = workloadNames();
    auto policies = paperPolicySet();
    auto reports = runGrid(wl, policies);

    std::printf("Absolute IPC:\n");
    seriesHeader(wl);
    for (const auto &p : policies)
        series(p.name, wl, metricRow(reports, wl, p.name, ipcOf));

    std::printf("\nIPC normalized to Norm (plus geomean):\n");
    seriesHeader(wl);
    for (const auto &p : policies) {
        auto vals = normalizedMetric(reports, wl, p.name, "Norm", ipcOf);
        series(p.name, wl, vals);
    }
    std::printf("\n%-18s %s\n", "policy", "geomean_ipc_vs_norm");
    for (const auto &p : policies) {
        std::printf("%-18s %.3f\n", p.name.c_str(),
                    geoMeanNormalized(reports, wl, p.name, "Norm",
                                      ipcOf));
    }

    std::printf("\nHeadline checks:\n");
    std::printf("  E-Slow+SC on lbm vs Norm: %.2fx (paper: 0.46x)\n",
                findReport(reports, "lbm", "E-Slow+SC").ipc /
                    findReport(reports, "lbm", "Norm").ipc);
    std::printf("  BE-Mellow+SC geomean vs Norm: %.3fx (paper: "
                "~1.06x)\n",
                geoMeanNormalized(reports, wl, "BE-Mellow+SC", "Norm",
                                  ipcOf));
    return 0;
}
