/**
 * @file
 * Ablation: wear-leveling scheme under skewed write patterns.
 *
 * The lifetime extrapolation assumes the leveler keeps max block wear
 * within 1/eta (eta = 0.9) of the mean. This bench drives the
 * detailed per-block tracker with three write skews (uniform, 90/10
 * hot-spot, single hot block) through no leveling, Start-Gap and
 * Security Refresh, reporting max/mean wear and maintenance overhead
 * — verifying the assumption rather than assuming it.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/rng.hh"
#include "wear/endurance_model.hh"
#include "wear/wear_leveler.hh"
#include "wear/wear_tracker.hh"

using namespace mellowsim;

namespace
{

constexpr std::uint64_t kBlocks = 4096;
constexpr std::uint64_t kWrites = 4096 * 400;

enum class Skew { Uniform, HotSpot, SingleBlock };

const char *
skewName(Skew s)
{
    switch (s) {
      case Skew::Uniform: return "uniform";
      case Skew::HotSpot: return "90/10-hot";
      case Skew::SingleBlock: return "one-block";
    }
    return "?";
}

std::uint64_t
nextBlock(Skew s, Rng &rng)
{
    switch (s) {
      case Skew::Uniform:
        return rng.nextBounded(kBlocks);
      case Skew::HotSpot:
        // 90% of writes to 10% of the blocks.
        return rng.nextBool(0.9) ? rng.nextBounded(kBlocks / 10)
                                 : rng.nextBounded(kBlocks);
      case Skew::SingleBlock:
        return 7;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    std::printf("==============================================================\n");
    std::printf("abl_wear_leveling: leveler comparison on skewed writes\n");
    std::printf("paper: Start-Gap reaches ~95%% of ideal lifetime; the\n");
    std::printf("lifetime model here budgets eta = 0.9\n");
    std::printf("==============================================================\n\n");

    EnduranceModel model;
    std::printf("%-11s %-18s %10s %12s %12s\n", "skew", "leveler",
                "max/mean", "maint_writes", "overhead%");

    for (Skew skew : {Skew::Uniform, Skew::HotSpot, Skew::SingleBlock}) {
        for (WearLevelerKind kind : {WearLevelerKind::None,
                                     WearLevelerKind::StartGap,
                                     WearLevelerKind::SecurityRefresh}) {
            WearTrackerConfig c;
            c.numBanks = 1;
            c.blocksPerBank = kBlocks;
            c.leveler = kind;
            c.gapWritePeriod = 100;
            c.detailedBlocks = true;
            WearTracker t(c, model);

            Rng rng(42);
            for (std::uint64_t i = 0; i < kWrites; ++i) {
                t.recordWrite(BankId(0), DeviceAddr(nextBlock(skew, rng)),
                              150 * kNanosecond, false);
            }

            double ratio = t.maxBlockWear(BankId(0)) / t.meanBlockWear(BankId(0));
            std::uint64_t maint = t.bankStats(BankId(0)).gapMoveWrites;
            std::printf("%-11s %-18s %10.2f %12llu %11.2f%%\n",
                        skewName(skew), wearLevelerKindName(kind),
                        ratio, static_cast<unsigned long long>(maint),
                        100.0 * static_cast<double>(maint) /
                            static_cast<double>(kWrites));
        }
    }

    std::printf("\n(max/mean near 1.0 = ideal leveling; the lifetime "
                "formula's eta=0.9 corresponds to max/mean <= ~1.11 "
                "in steady state)\n");
    return 0;
}
