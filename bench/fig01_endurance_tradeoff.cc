/**
 * @file
 * Figure 1: write latency vs endurance for Expo_Factor 1.0 .. 3.0.
 *
 * Pure analytic model (Equation 2), no simulation. Baseline: 150 ns
 * normal write, 5e6 endurance.
 */

#include <cstdio>

#include "bench_util.hh"
#include "wear/endurance_model.hh"

using namespace mellowsim;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    benchutil::banner(
        "fig01", "Endurance vs write latency (Equation 2)",
        "150ns/5e6 baseline; quadratic default gives 1.5x->1.125e7, "
        "2x->2e7, 3x->4.5e7");

    const double expos[] = {1.0, 1.5, 2.0, 2.5, 3.0};

    std::printf("%-14s", "latency_ns");
    for (double e : expos)
        std::printf(" expo=%-8.1f", e);
    std::printf("\n");

    for (double n = 1.0; n <= 3.01; n += 0.25) {
        std::printf("%-14.1f", n * 150.0);
        for (double e : expos) {
            EnduranceParams p;
            p.expoFactor = e;
            EnduranceModel m(p);
            std::printf(" %-13.4g", m.enduranceAtFactor(PulseFactor(n)));
        }
        std::printf("\n");
    }

    std::printf("\nTable II check (expo=2.0): 1.5x=%.4g 2x=%.4g 3x=%.4g "
                "writes\n",
                EnduranceModel{}.enduranceAtFactor(PulseFactor(1.5)),
                EnduranceModel{}.enduranceAtFactor(PulseFactor(2.0)),
                EnduranceModel{}.enduranceAtFactor(PulseFactor(3.0)));
    return 0;
}
