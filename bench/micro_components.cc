/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates:
 * event queue, RNG, Start-Gap remapping, cache array, workload
 * generation, and a full end-to-end simulation step rate.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "mellow/policy.hh"
#include "nvm/controller.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "system/system.hh"
#include "wear/start_gap.hh"
#include "workload/workload.hh"

using namespace mellowsim;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>((i * 37) % 500),
                        [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_StartGapRemap(benchmark::State &state)
{
    StartGap sg(1 << 20, 100);
    std::uint64_t la = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sg.remap(la));
        la = (la + 977) & ((1 << 20) - 1);
        sg.noteWrite();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StartGapRemap);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 2ull * 1024 * 1024;
    cfg.assoc = 16;
    SetAssocCache cache(cfg);
    Rng rng(3);
    for (auto _ : state) {
        LogicalAddr addr(rng.nextBounded(1 << 16) * kBlockSize);
        if (!cache.access(addr, false).hit)
            cache.insert(addr, false);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_WorkloadNext(benchmark::State &state)
{
    WorkloadPtr w = makeWorkload("stream", 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(w->next().addr);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadNext);

void
BM_ControllerReadPath(benchmark::State &state)
{
    EventQueue eq;
    MemControllerConfig cfg;
    cfg.policy = policies::norm();
    MemoryController ctrl(eq, cfg);
    Rng rng(11);
    std::uint64_t done = 0;
    for (auto _ : state) {
        ctrl.read(LogicalAddr(rng.nextBounded(1 << 24) * kBlockSize),
                  [&done] { ++done; });
        eq.run(eq.curTick() + 200 * kNanosecond);
    }
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerReadPath);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.workloadName = "gups";
        cfg.policy = policies::beMellow().withSC();
        cfg.instructions = 200'000;
        cfg.warmupInstructions = 50'000;
        SimReport r = runSystem(cfg);
        benchmark::DoNotOptimize(r.ipc);
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
    state.SetLabel("simulated instructions per wall second");
}
BENCHMARK(BM_EndToEndSimulation);

} // namespace

BENCHMARK_MAIN();
