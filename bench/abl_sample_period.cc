/**
 * @file
 * Ablation: the profiler/quota sample period T_sample (paper:
 * 500,000 ns). Shorter periods adapt the useless-position verdict
 * faster but on noisier counts.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("abl_sample_period",
           "T_sample sweep 100us / 500us / 2ms (paper default: 500us)",
           "Section IV-B1 profiling period sensitivity");

    const std::vector<std::string> wl = {"stream", "hmmer", "mcf",
                                         "lbm"};
    std::printf("%-10s %-10s %8s %9s %10s %10s\n", "t_sample",
                "workload", "ipc", "life_yrs", "eager", "wasted");
    for (Tick period : {100 * kMicrosecond, 500 * kMicrosecond,
                        2 * kMillisecond}) {
        auto reports =
            runGrid(wl, {beMellow().withSC()},
                    [period](SystemConfig &cfg) {
                        cfg.hierarchy.llc.profiler.samplePeriod = period;
                        cfg.memory.quota.samplePeriod = period;
                    });
        for (const SimReport &r : reports) {
            std::printf("%7.0fus %-10s %8.3f %9.2f %10llu %10llu\n",
                        ticksToNs(period) / 1000.0,
                        r.workload.c_str(), r.ipc, r.lifetimeYears,
                        static_cast<unsigned long long>(r.eagerSent),
                        static_cast<unsigned long long>(r.eagerWasted));
        }
    }
    return 0;
}
