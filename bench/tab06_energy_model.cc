/**
 * @file
 * Tables V and VI: ReRAM cell parameters and per-operation energies
 * of the memristive main memory. Pure model, no simulation.
 */

#include <cstdio>

#include "bench_util.hh"
#include "energy/energy_model.hh"

using namespace mellowsim;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    benchutil::banner("tab06", "Tables V/VI energy model",
                      "slow/normal write energy ratio 1.26 (CellA) .. "
                      "2.05 (CellE); buffer read 1503 pJ");

    std::printf("Table V (cell set/reset energy, pJ):\n");
    std::printf("%-8s %10s %10s\n", "cell", "normal", "slow");
    for (CellType cell : kAllCellTypes) {
        EnergyParams p;
        p.cell = cell;
        std::printf("%-8s %10.2f %10.2f\n", cellTypeName(cell).c_str(),
                    cellEnergyPj(cell),
                    cellEnergyPj(cell) * p.slowCellEnergyFactor);
    }

    std::printf("\nTable VI (per-operation energy of the main "
                "memory, pJ):\n");
    std::printf("%-8s %12s %12s %12s %12s\n", "cell", "buffer_read",
                "norm_write", "slow_write", "slow/norm");
    for (CellType cell : kAllCellTypes) {
        EnergyParams p;
        p.cell = cell;
        EnergyModel m(p);
        std::printf("%-8s %12.1f %12.1f %12.1f %12.2f\n",
                    cellTypeName(cell).c_str(), m.readEnergyPj(false),
                    m.writeEnergyPj(false), m.writeEnergyPj(true),
                    m.slowNormalWriteRatio());
    }

    std::printf("\npaper values: norm 248.8/300.0/402.4/607.2/1016.8, "
                "slow 314.5/432.3/667.8/1138.8/2080.9, ratios "
                "1.26/1.44/1.66/1.88/2.05\n");
    return 0;
}
