/**
 * @file
 * Ablation: the full wear-leveler zoo crossed with write policies and
 * fault injection.
 *
 * The paper evaluates Start-Gap only (Table II); this sweep runs every
 * leveling backend — none, Start-Gap, Security Refresh, SoftWear and
 * WoLFRaM — under the Norm / BE-Mellow+SC / Slow write policies, with
 * the fault layer off and on. With faults on, endurance is heavily
 * accelerated (tiny median endurance, lognormal sigma 1.0) and a
 * capacity floor is armed, so runs may legitimately end at end-of-life
 * (ReportStatus::CapacityExhausted) instead of completing the
 * workload; the sweep records that status per row rather than
 * treating it as an error.
 *
 * Output: one CSV row per configuration with the two lifetime-facing
 * metrics the zoo exists to compare —
 *   first_ue_years      de-accelerated years to the first
 *                       uncorrectable error (0 = none in the window)
 *   effective_capacity  fraction of lines still reliable at the end
 *                       of the run (capacity at death for exhausted
 *                       runs)
 *
 * Usage: abl_leveler_zoo [--smoke]
 *   --smoke  shrink the runs for CI (registered as a ctest smoke
 *            target so every backend is proven to survive faults and
 *            end-of-life gracefully on every pipeline run)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "wear/wear_leveler.hh"

using namespace mellowsim;

namespace
{

/** Accelerated-aging knob shared by every faults-on run. */
constexpr double kEnduranceScale = 1e-9;

/** One cell of the sweep grid. */
struct Job
{
    WearLevelerKind kind;
    bool faults;
};

/**
 * Shrink the memory and caches so the write stream actually reaches
 * the banks (the stock 2 MB LLC absorbs everything at these lengths)
 * and the leveler knobs so every backend performs maintenance within
 * the window — the same recipe the determinism audit uses.
 */
void
shrinkForCoverage(SystemConfig &cfg)
{
    cfg.memory.geometry.capacityBytes = 64ull << 20;
    cfg.hierarchy.l1.sizeBytes = 4 * 1024;
    cfg.hierarchy.l2.sizeBytes = 8 * 1024;
    cfg.hierarchy.llc.cache.sizeBytes = 16 * 1024;
    cfg.memory.gapWritePeriod = 8;
    cfg.memory.softWearSamplePeriod = 2;
    cfg.memory.softWearRelocThreshold = 4;
}

/** Arm the accelerated fault layer with a reachable capacity floor. */
void
armFaults(SystemConfig &cfg)
{
    cfg.memory.fault.enabled = true;
    cfg.memory.fault.enduranceSigma = 1.0;
    cfg.memory.fault.enduranceScale = kEnduranceScale;
    cfg.memory.fault.repairEntriesPerLine = 1;
    cfg.memory.fault.spareLinesPerBank = 8;
    // End-of-life: stop (gracefully) once 0.1% of lines are dead.
    cfg.memory.fault.capacityFloorFraction = 0.999;
}

/**
 * De-accelerated years to the first uncorrectable error. The fault
 * layer scales every line's endurance down by kEnduranceScale, so one
 * simulated second of wear-out corresponds to 1/kEnduranceScale real
 * seconds; 0 means no uncorrectable error inside the window.
 */
double
firstUeYears(const SimReport &r)
{
    if (r.firstUncorrectableTick == 0)
        return 0.0;
    double simSeconds =
        static_cast<double>(r.firstUncorrectableTick) / kSecond;
    return simSeconds / kEnduranceScale / (365.25 * 24.0 * 3600.0);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    benchutil::banner(
        "abl_leveler_zoo",
        "leveler x policy x faults cross-product",
        "Start-Gap reaches ~95% of ideal lifetime; the zoo measures "
        "how the alternatives fare when lines actually die");

    const std::vector<WearLevelerKind> kinds = {
        WearLevelerKind::None,
        WearLevelerKind::StartGap,
        WearLevelerKind::SecurityRefresh,
        WearLevelerKind::SoftWear,
        WearLevelerKind::WoLFRaM,
    };
    const std::vector<WritePolicyConfig> pols = {
        policies::norm(),
        policies::beMellow().withSC(),
        policies::slow(),
    };

    std::vector<SystemConfig> configs;
    std::vector<Job> jobs;
    for (WearLevelerKind kind : kinds) {
        for (const WritePolicyConfig &p : pols) {
            for (bool faults : {false, true}) {
                SystemConfig cfg = makeConfig("stream", p);
                if (smoke) {
                    cfg.instructions = 150'000;
                    cfg.warmupInstructions = 30'000;
                }
                shrinkForCoverage(cfg);
                cfg.memory.wearLeveler = kind;
                if (faults)
                    armFaults(cfg);
                configs.push_back(std::move(cfg));
                jobs.push_back({kind, faults});
            }
        }
    }

    std::vector<SimReport> reports = runConfigs(std::move(configs));

    std::printf("leveler,policy,faults,status,ipc,lifetime_years,"
                "first_ue_years,effective_capacity,retired,dead\n");
    unsigned exhausted = 0;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const SimReport &r = reports[i];
        const Job &job = jobs[i];
        if (r.status == ReportStatus::CapacityExhausted)
            ++exhausted;
        std::printf("%s,%s,%s,%s,%.4f,%.3f,%.4f,%.6f,%llu,%llu\n",
                    wearLevelerKindName(job.kind), r.policy.c_str(),
                    job.faults ? "on" : "off", reportStatusName(r.status),
                    r.ipc, r.lifetimeYears, firstUeYears(r),
                    r.effectiveCapacityFraction,
                    static_cast<unsigned long long>(r.retiredLines),
                    static_cast<unsigned long long>(r.deadLines));
    }

    std::printf("\n%u of %zu runs ended at the capacity floor "
                "(status capacity-exhausted) — graceful end-of-life, "
                "not an error.\n",
                exhausted, reports.size());
    return 0;
}
