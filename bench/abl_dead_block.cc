/**
 * @file
 * Extension bench: dead-block prediction as the eager-candidate
 * selector, the paper's Section VII suggestion ("we believe that by
 * using Dead Block Prediction, we can further improve the
 * effectiveness of Eager Mellow Writes").
 *
 * Compares the paper's useless-LRU-position profiler against a decay
 * dead-block predictor (a dirty line untouched for a whole profiling
 * period is predicted dead) under BE-Mellow+SC.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

namespace
{

std::vector<SimReport>
runWithSelector(const std::vector<std::string> &wl, EagerSelector sel,
                const char *tag)
{
    auto reports =
        runGrid(wl, {beMellow().withSC()}, [sel](SystemConfig &cfg) {
            cfg.hierarchy.llc.selector = sel;
        });
    for (SimReport &r : reports)
        r.policy = tag;
    return reports;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("abl_dead_block",
           "Eager candidate selection: useless-LRU vs dead-block "
           "prediction",
           "Section VII: dead block prediction should further improve "
           "Eager Mellow Writes");

    const auto &wl = workloadNames();
    auto base = runGrid(wl, {norm()});
    auto lru =
        runWithSelector(wl, EagerSelector::UselessLru, "Eager-LRU");
    auto dbp =
        runWithSelector(wl, EagerSelector::DecayDeadBlock, "Eager-DBP");

    std::vector<SimReport> all = base;
    all.insert(all.end(), lru.begin(), lru.end());
    all.insert(all.end(), dbp.begin(), dbp.end());

    std::printf("%-12s %-10s %8s %9s %10s %10s %8s\n", "workload",
                "selector", "ipc", "life_yrs", "eager", "wasted",
                "waste%");
    for (const std::string &w : wl) {
        for (const char *tag : {"Eager-LRU", "Eager-DBP"}) {
            const SimReport &r = findReport(all, w, tag);
            double waste =
                r.eagerSent ? 100.0 *
                                  static_cast<double>(r.eagerWasted) /
                                  static_cast<double>(r.eagerSent)
                            : 0.0;
            std::printf("%-12s %-10s %8.3f %9.2f %10llu %10llu "
                        "%7.2f%%\n",
                        w.c_str(), tag, r.ipc, r.lifetimeYears,
                        static_cast<unsigned long long>(r.eagerSent),
                        static_cast<unsigned long long>(r.eagerWasted),
                        waste);
        }
    }

    std::printf("\nGeomeans vs Norm:\n");
    for (const char *tag : {"Eager-LRU", "Eager-DBP"}) {
        std::printf("  %-10s ipc %.3fx  lifetime %.2fx\n", tag,
                    geoMeanNormalized(all, wl, tag, "Norm", ipcOf),
                    geoMeanNormalized(all, wl, tag, "Norm",
                                      lifetimeOf));
    }
    return 0;
}
