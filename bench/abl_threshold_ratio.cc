/**
 * @file
 * Ablation: the useless-position THRESHOLD_RATIO (paper: 1/32).
 * A looser threshold marks more stack positions useless (more, but
 * riskier, eager write backs); a tighter one starves the eager queue.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("abl_threshold_ratio",
           "THRESHOLD_RATIO sweep 1/8 .. 1/128 (paper default: 1/32)",
           "the eager-vs-wasted trade-off of Section IV-B1");

    const std::vector<std::string> wl = {"stream", "hmmer", "zeusmp",
                                         "milc"};
    std::printf("%-10s %-10s %8s %9s %10s %10s %9s\n", "ratio",
                "workload", "ipc", "life_yrs", "eager", "wasted",
                "waste%");
    for (double denom : {8.0, 32.0, 128.0}) {
        auto reports = runGrid(wl, {beMellow().withSC()},
                               [denom](SystemConfig &cfg) {
                                   cfg.hierarchy.llc.profiler
                                       .thresholdRatio = 1.0 / denom;
                               });
        for (const SimReport &r : reports) {
            double waste =
                r.eagerSent
                    ? 100.0 * static_cast<double>(r.eagerWasted) /
                          static_cast<double>(r.eagerSent)
                    : 0.0;
            std::printf("1/%-8.0f %-10s %8.3f %9.2f %10llu %10llu "
                        "%8.2f%%\n",
                        denom, r.workload.c_str(), r.ipc,
                        r.lifetimeYears,
                        static_cast<unsigned long long>(r.eagerSent),
                        static_cast<unsigned long long>(r.eagerWasted),
                        waste);
        }
    }
    return 0;
}
