/**
 * @file
 * Figure 15: requests issued to the memory banks, normalized to Norm.
 *
 * Write attempts are counted per issue, so retried (cancelled) writes
 * inflate the totals — the paper's point: the increase over Norm is
 * mostly write cancellation, not eager write backs.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig15", "Requests issued to memory banks (vs Norm)",
           "BE-Mellow+SC issues more bank writes than Norm, chiefly "
           "because of cancelled-write retries");

    const auto &wl = workloadNames();
    auto policies = paperPolicySet();
    auto reports = runGrid(wl, policies);

    std::printf("Total bank requests normalized to Norm:\n");
    seriesHeader(wl);
    for (const auto &p : policies) {
        auto vals = normalizedMetric(
            reports, wl, p.name, "Norm", [](const SimReport &r) {
                return static_cast<double>(r.totalBankRequests());
            });
        series(p.name, wl, vals);
    }

    std::printf("\nBE-Mellow+SC issue breakdown per workload:\n");
    std::printf("%-12s %10s %10s %10s %10s %10s\n", "workload", "reads",
                "normal_w", "slow_w", "eager_w", "cancelled");
    for (const std::string &w : wl) {
        const SimReport &m = findReport(reports, w, "BE-Mellow+SC");
        std::printf("%-12s %10llu %10llu %10llu %10llu %10llu\n",
                    w.c_str(),
                    static_cast<unsigned long long>(m.memReads),
                    static_cast<unsigned long long>(
                        m.issuedNormalWrites),
                    static_cast<unsigned long long>(m.issuedSlowWrites),
                    static_cast<unsigned long long>(m.issuedEagerSlow),
                    static_cast<unsigned long long>(m.cancelledWrites));
    }
    return 0;
}
