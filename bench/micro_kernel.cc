/**
 * @file
 * Simulation-kernel microbenchmark: the permanent perf harness for
 * the event kernel and the controller request path.
 *
 * Prints machine-parseable `perf.<metric> <value>` lines consumed by
 * tools/perf_report.py, which records them in BENCH_perf.json so every
 * PR can be judged against the benchmark trajectory:
 *
 *   perf.event.ns_per_event        host ns per fired event
 *   perf.event.events_per_sec      schedule+fire throughput
 *   perf.event.steady_allocs       heap allocations during the timed
 *                                  steady-state loop (-1 when the
 *                                  alloc counter is compiled out)
 *   perf.cancel.ns_per_op          schedule+deschedule churn cost
 *   perf.cancel.steady_allocs      ditto for the cancel churn loop
 *   perf.rq.ns_per_op              request-queue push/pop/index cost
 *   perf.rq.steady_allocs          ditto for the queue churn loop
 *   perf.system.sim_ticks_per_host_sec
 *   perf.system.instrs_per_host_sec
 *   perf.shard.ns_per_epoch        epoch-driver overhead (4-shard ring)
 *   perf.shard.msgs_per_s          cross-shard SPSC ring throughput
 *   perf.shard.events_per_s        sharded System, 4 workers
 *   perf.shard.events_per_s_serial sharded System, serial oracle
 *   perf.shard.speedup             4-worker / serial events-per-second
 *                                  (bounded by the host's core count)
 *
 * Scaling knobs (environment):
 *   MELLOWSIM_PERF_EVENTS  events in the timed kernel loop (def 2e6)
 *   MELLOWSIM_INSTRS       instructions for the System slice (def 1e6)
 *
 * Only the public kernel API is used, so the binary benchmarks any
 * kernel implementation unchanged — the before/after numbers in
 * EXPERIMENTS.md come from running this same file on both.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "mellow/policy.hh"
#include "nvm/queues.hh"
#include "sim/alloc_counter.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/sync.hh"
#include "system/report.hh"
#include "system/sharded.hh"
#include "system/system.hh"

using namespace mellowsim;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t
envCount(const char *name, std::uint64_t dflt)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return dflt;
    return static_cast<std::uint64_t>(std::strtod(v, nullptr));
}

void
metric(const char *name, double value)
{
    std::printf("perf.%s %.6g\n", name, value);
}

std::int64_t
allocDelta(std::uint64_t before)
{
    if (!alloccounter::enabled())
        return -1;
    return static_cast<std::int64_t>(alloccounter::allocations() -
                                     before);
}

/**
 * Event-kernel throughput: a fixed population of self-rescheduling
 * chains, the shape of the controller's completion/retry events. Each
 * fire schedules one successor, so the pending population (and the
 * kernel's internal storage) is constant — any allocation in the
 * timed region is a steady-state allocation on the schedule/fire
 * path.
 */
void
benchEventKernel(std::uint64_t totalEvents)
{
    constexpr unsigned kChains = 64;

    EventQueue eq;
    std::uint64_t fired = 0;
    std::uint64_t sink = 0;

    struct Chain
    {
        EventQueue *eq;
        std::uint64_t *fired;
        std::uint64_t *sink;
        std::uint64_t limit;
        Tick stride;

        void
        operator()() const
        {
            ++*fired;
            *sink += eq->curTick();
            if (*fired < limit) {
                Chain next = *this;
                eq->scheduleIn(stride, next);
            }
        }
    };

    // Warm-up fills the free lists and grows the heap storage to its
    // steady-state footprint.
    std::uint64_t warm = totalEvents / 10 + kChains;
    for (unsigned c = 0; c < kChains; ++c) {
        eq.scheduleIn(1 + c % 7,
                      Chain{&eq, &fired, &sink, warm, 1 + c % 13});
    }
    eq.run();

    fired = 0;
    std::uint64_t allocs0 = alloccounter::allocations();
    Clock::time_point t0 = Clock::now();
    for (unsigned c = 0; c < kChains; ++c) {
        eq.scheduleIn(1 + c % 7,
                      Chain{&eq, &fired, &sink, totalEvents,
                            1 + c % 13});
    }
    eq.run();
    double secs = secondsSince(t0);
    std::int64_t allocs = allocDelta(allocs0);

    double events = static_cast<double>(fired);
    metric("event.ns_per_event", secs * 1e9 / events);
    metric("event.events_per_sec", events / secs);
    metric("event.steady_allocs", static_cast<double>(allocs));
    if (sink == 0)
        std::printf("# sink %llu\n",
                    static_cast<unsigned long long>(sink));
}

/**
 * Schedule/deschedule churn: the controller's dominant cancel shape
 * (write-completion events descheduled by read-triggered
 * cancellation, scheduler dedup events rescheduled earlier).
 */
void
benchScheduleCancel(std::uint64_t totalOps)
{
    constexpr unsigned kSlots = 128;

    EventQueue eq;
    std::vector<EventId> handles(kSlots);
    std::uint64_t fired = 0;

    auto churn = [&](std::uint64_t rounds) {
        for (std::uint64_t r = 0; r < rounds; ++r) {
            unsigned slot = static_cast<unsigned>(r % kSlots);
            if (eq.scheduled(handles[slot]))
                eq.deschedule(handles[slot]);
            handles[slot] = eq.scheduleIn(1 + (r % 97),
                                          [&fired] { ++fired; });
            if (r % kSlots == kSlots - 1)
                eq.run(eq.curTick() + 5);
        }
        eq.run();
    };

    churn(totalOps / 10 + kSlots);

    std::uint64_t allocs0 = alloccounter::allocations();
    Clock::time_point t0 = Clock::now();
    churn(totalOps);
    double secs = secondsSince(t0);
    std::int64_t allocs = allocDelta(allocs0);

    metric("cancel.ns_per_op",
           secs * 1e9 / static_cast<double>(totalOps));
    metric("cancel.steady_allocs", static_cast<double>(allocs));
}

/**
 * Request-queue churn: push/pop across banks plus the block-index
 * lookups the read-forwarding path performs per demand read.
 */
void
benchRequestQueue(std::uint64_t totalOps)
{
    constexpr unsigned kBanks = 8;
    constexpr unsigned kDepth = 24;

    RequestQueue q(kBanks, 32);
    std::uint64_t lookups = 0;

    auto churn = [&](std::uint64_t rounds) {
        std::uint64_t nextAddr = 0;
        for (std::uint64_t r = 0; r < rounds; ++r) {
            unsigned bank = static_cast<unsigned>(r % kBanks);
            MemRequest req;
            req.type = ReqType::Write;
            req.addr = LogicalAddr(nextAddr);
            req.loc.bank = BankId(bank);
            req.arrival = static_cast<Tick>(r);
            nextAddr = (nextAddr + kBlockSize) % (1u << 22);
            q.push(std::move(req));
            lookups += q.countForBlock(LogicalAddr(nextAddr));
            if (q.countForBank(BankId(bank)) > kDepth / kBanks) {
                MemRequest out = q.pop(BankId(bank));
                lookups += out.attempts;
            }
            if (q.oldestArrival() == MaxTick)
                ++lookups;
        }
        for (unsigned b = 0; b < kBanks; ++b) {
            while (q.countForBank(BankId(b)) > 0)
                q.pop(BankId(b));
        }
    };

    churn(totalOps / 10 + 64);

    std::uint64_t allocs0 = alloccounter::allocations();
    Clock::time_point t0 = Clock::now();
    churn(totalOps);
    double secs = secondsSince(t0);
    std::int64_t allocs = allocDelta(allocs0);

    metric("rq.ns_per_op", secs * 1e9 / static_cast<double>(totalOps));
    metric("rq.steady_allocs", static_cast<double>(allocs));
    if (lookups == 0)
        std::printf("# lookups %llu\n",
                    static_cast<unsigned long long>(lookups));
}

/** End-to-end System slice: whole-simulator host throughput. */
void
benchSystemSlice(std::uint64_t instructions)
{
    SystemConfig cfg;
    cfg.workloadName = "stream";
    cfg.policy = policies::beMellow().withSC().withWQ();
    cfg.instructions = instructions;
    cfg.warmupInstructions = instructions / 4;
    cfg.seed = 1;

    Clock::time_point t0 = Clock::now();
    System sys(cfg);
    SimReport r = sys.run();
    double secs = secondsSince(t0);

    metric("system.sim_ticks_per_host_sec",
           static_cast<double>(r.simTicks) / secs);
    metric("system.instrs_per_host_sec",
           static_cast<double>(r.instructions) / secs);
    metric("system.host_sec", secs);
}

/**
 * Shard-epoch driver cost: a 4-shard forwarding ring with a constant
 * in-flight message population, driven through fixed-horizon epochs by
 * the serial oracle. Isolates the per-epoch overhead of the epoch
 * driver (port drain + queue run + bookkeeping) and the cross-shard
 * message rate through the SPSC rings, with no model code in the loop.
 */
void
benchShardEpochs(std::uint64_t epochs)
{
    constexpr Tick kLookahead = 16;
    constexpr unsigned kShards = 4;
    constexpr unsigned kSeedsPerShard = 8;

    ShardGroup group{Lookahead(kLookahead)};
    std::vector<ChannelShard *> shards;
    for (unsigned i = 0; i < kShards; ++i)
        shards.push_back(&group.addShard());
    for (unsigned i = 0; i < kShards; ++i)
        group.connect(*shards[i], *shards[(i + 1) % kShards]);

    for (ChannelShard *shard : shards) {
        // Every delivery forwards, so the in-flight population stays
        // at kShards * kSeedsPerShard for the whole run.
        shard->setHandler(
            [](ChannelShard &self, Tick, ShardPayload payload) {
                self.send(0, payload);
            });
        for (Tick extra = 0; extra < kSeedsPerShard; ++extra)
            shard->sendDelayed(0, shard->id() + 1, extra);
    }

    Clock::time_point t0 = Clock::now();
    group.run(epochs * kLookahead, 1);
    double secs = secondsSince(t0);

    ShardStats merged = group.mergedStats();
    metric("shard.ns_per_epoch",
           secs * 1e9 / static_cast<double>(epochs));
    metric("shard.msgs_per_s",
           static_cast<double>(merged.messagesReceived.value()) / secs);
}

/**
 * Sharded-System slice: the real 16-channel model on the ChannelShard
 * path (DESIGN.md §15), serial oracle vs 4 workers. The two runs are
 * fingerprint-identical (that is the determinism contract), so the
 * speedup is a pure host-throughput ratio; on a single-core host it
 * sits at or below 1.0 and the absolute events/s is the number that
 * matters.
 */
void
benchShardedSystem(std::uint64_t instructions)
{
    SystemConfig cfg;
    cfg.workloadName = "gups"; // random traffic touches every channel
    cfg.policy = policies::beMellow().withSC().withWQ();
    cfg.instructions = instructions;
    cfg.warmupInstructions = instructions / 4;
    cfg.seed = 1;
    cfg.numChannels = 16;
    cfg.memory.geometry.capacityBytes = 1ull << 30;

    auto timedRun = [&cfg](unsigned shards, ShardRunInfo &info,
                           std::string &fingerprint) {
        SystemConfig run = cfg;
        run.shards = shards;
        Clock::time_point t0 = Clock::now();
        SimReport r = runShardedSystem(run, &info);
        double secs = secondsSince(t0);
        if (r.simTicks == 0)
            std::printf("# empty sharded run\n");
        fingerprint = reportFingerprint(r);
        return secs;
    };

    ShardRunInfo serial, threaded;
    std::string serialPrint, threadedPrint;
    double serialSecs = timedRun(1, serial, serialPrint);
    double threadedSecs = timedRun(4, threaded, threadedPrint);

    // The perf numbers above are advisory; this is the gate. A
    // threaded run that drifts from the serial oracle means the
    // epoch protocol lost determinism, and no throughput figure from
    // a diverged simulation is worth recording.
    if (serialPrint != threadedPrint) {
        std::fprintf(stderr,
                     "FAIL: sharded System fingerprint diverged "
                     "between --shards 1 and --shards 4\n");
        std::exit(1);
    }

    double serialRate =
        static_cast<double>(serial.events) / serialSecs;
    double threadedRate =
        static_cast<double>(threaded.events) / threadedSecs;
    metric("shard.events_per_s", threadedRate);
    metric("shard.events_per_s_serial", serialRate);
    metric("shard.speedup", threadedRate / serialRate);
    std::printf("# shard slice: events=%llu epochs=%llu cores=%u\n",
                static_cast<unsigned long long>(serial.events),
                static_cast<unsigned long long>(serial.epochs),
                sync::hardwareConcurrency());
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    Logger::setQuiet(true);

    std::uint64_t events =
        envCount("MELLOWSIM_PERF_EVENTS", 2'000'000);
    std::uint64_t instrs = envCount("MELLOWSIM_INSTRS", 1'000'000);

    std::printf("# micro_kernel: events=%llu instrs=%llu "
                "alloc_counter=%d\n",
                static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(instrs),
                alloccounter::enabled() ? 1 : 0);
    metric("alloc_counter_enabled",
           alloccounter::enabled() ? 1.0 : 0.0);

    benchEventKernel(events);
    benchScheduleCancel(events / 2);
    benchRequestQueue(events / 2);
    benchSystemSlice(instrs);
    benchShardEpochs(events / 40);
    benchShardedSystem(instrs / 4);
    return 0;
}
