/**
 * @file
 * Figure 13: fraction of execution time spent in write drains.
 *
 * Paper observations to check: globally slow writes (E-Slow+SC) drain
 * often; Bank-Aware Mellow Writes does not increase drains vs Norm;
 * BE-Mellow+SC keeps drain time within ~6%; +WQ policies drain more
 * than their non-WQ versions but less than E-Slow+SC.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig13", "Write drain time fraction by policy",
           "B-Mellow+SC ~= Norm; BE-Mellow+SC <= ~6%; WQ raises "
           "drains but stays below E-Slow+SC");

    const auto &wl = workloadNames();
    auto policies = paperPolicySet();
    auto reports = runGrid(wl, policies);

    seriesHeader(wl);
    for (const auto &p : policies) {
        series(p.name, wl,
               metricRow(reports, wl, p.name, [](const SimReport &r) {
                   return r.drainTimeFraction;
               }),
               "%8.4f");
    }

    double worst_be = 0.0, worst_eslow = 0.0;
    for (const std::string &w : wl) {
        worst_be = std::max(
            worst_be,
            findReport(reports, w, "BE-Mellow+SC").drainTimeFraction);
        worst_eslow = std::max(
            worst_eslow,
            findReport(reports, w, "E-Slow+SC").drainTimeFraction);
    }
    std::printf("\nHeadline checks:\n");
    std::printf("  worst BE-Mellow+SC drain fraction: %.3f (paper: "
                "<= ~0.06)\n",
                worst_be);
    std::printf("  worst E-Slow+SC drain fraction: %.3f (paper: the "
                "largest of all policies)\n",
                worst_eslow);
    return 0;
}
