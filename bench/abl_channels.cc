/**
 * @file
 * Extension bench: channel-count sweep (1/2/4/16/32/64 channels).
 *
 * The paper evaluates a single channel but sizes the eager queue per
 * channel (Section IV-E). More channels multiply bus bandwidth, bank
 * count and eager-queue capacity; like the Figure 18 bank sweep, this
 * shows how Mellow Writes' benefit scales with the parallelism
 * available to hide slow writes in. The wide points (16+) are also the
 * shape the sharded runtime targets — pass --shards <n> (or set
 * MELLOWSIM_SHARDS) to run each simulation on the per-channel
 * ChannelShard path described in DESIGN.md §15.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("abl_channels",
           "Channel sweep 1/2/4/16/32/64 under Norm and BE-Mellow+SC",
           "per-channel eager queues (Section IV-E); parallelism "
           "feeds the mellow schemes");

    const std::vector<std::string> wl = {"stream", "lbm", "milc",
                                         "gups"};
    std::printf("%-9s %-14s %-10s %8s %9s %10s %10s\n", "channels",
                "policy", "workload", "ipc", "life_yrs", "bank_util",
                "eager");
    for (unsigned channels : {1u, 2u, 4u, 16u, 32u, 64u}) {
        auto reports =
            runGrid(wl, {norm(), beMellow().withSC()},
                    [channels](SystemConfig &cfg) {
                        cfg.numChannels = channels;
                    });
        for (const SimReport &r : reports) {
            std::printf("%-9u %-14s %-10s %8.3f %9.2f %10.3f %10llu\n",
                        channels, r.policy.c_str(), r.workload.c_str(),
                        r.ipc, r.lifetimeYears, r.avgBankUtilization,
                        static_cast<unsigned long long>(
                            r.issuedEagerSlow));
        }
        double gain = 1.0;
        {
            std::vector<double> gains;
            for (const std::string &w : wl) {
                gains.push_back(
                    findReport(reports, w, "BE-Mellow+SC")
                        .lifetimeYears /
                    findReport(reports, w, "Norm").lifetimeYears);
            }
            gain = stats::geoMean(gains);
        }
        std::printf("  -> lifetime gain (geomean) at %u channels: "
                    "%.2fx\n",
                    channels, gain);
    }
    return 0;
}
