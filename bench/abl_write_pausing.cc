/**
 * @file
 * Extension bench: write pausing (+WP) vs write cancellation (+SC).
 *
 * The paper (Section VII) notes that cancellation is also known as
 * read preemption and cites Qureshi's write pausing as the companion
 * technique. Pausing services the read just as fast but keeps the
 * partial pulse, so it avoids both the wear of repeated attempts and
 * the queue pressure of retries.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("abl_write_pausing",
           "BE-Mellow with cancellation (+SC) vs pausing (+WP)",
           "pausing preserves pulse time: same read latency relief, "
           "none of the retry wear");

    const auto &wl = workloadNames();
    auto reports = runGrid(wl, {
                                   norm(),
                                   beMellow().withSC(),
                                   beMellow().withWP(),
                               });

    std::printf("IPC normalized to Norm:\n");
    seriesHeader(wl);
    for (const char *p : {"BE-Mellow+SC", "BE-Mellow+WP"})
        series(p, wl, normalizedMetric(reports, wl, p, "Norm", ipcOf));

    std::printf("\nLifetime normalized to Norm:\n");
    seriesHeader(wl);
    for (const char *p : {"BE-Mellow+SC", "BE-Mellow+WP"}) {
        series(p, wl,
               normalizedMetric(reports, wl, p, "Norm", lifetimeOf));
    }

    std::printf("\nInterruption counts (sum over workloads):\n");
    std::uint64_t canc = 0, paused = 0;
    for (const std::string &w : wl) {
        canc += findReport(reports, w, "BE-Mellow+SC").cancelledWrites;
        paused += findReport(reports, w, "BE-Mellow+WP").pausedWrites;
    }
    std::printf("  +SC cancelled attempts: %llu\n",
                static_cast<unsigned long long>(canc));
    std::printf("  +WP paused writes:      %llu\n",
                static_cast<unsigned long long>(paused));

    std::printf("\nGeomeans vs Norm:\n");
    for (const char *p : {"BE-Mellow+SC", "BE-Mellow+WP"}) {
        std::printf("  %-14s ipc %.3fx  lifetime %.2fx\n", p,
                    geoMeanNormalized(reports, wl, p, "Norm", ipcOf),
                    geoMeanNormalized(reports, wl, p, "Norm",
                                      lifetimeOf));
    }
    return 0;
}
