/**
 * @file
 * Figure 17: lifetime sensitivity to the Expo_Factor of the analytic
 * endurance model (1.0, 1.5, 2.0, 2.5, 3.0).
 *
 * Paper observations to check: Slow+SC scales steeply with
 * Expo_Factor (~2x more lifetime going 2.0 -> 3.0), BE-Mellow+SC
 * scales more gently (~0.5x more) because its normal writes
 * contribute fixed wear; even at Expo_Factor = 1.0, BE-Mellow+SC
 * still reaches ~1.47x the Norm lifetime.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig17", "Lifetime vs Expo_Factor",
           "BE-Mellow+SC is useful even at expo=1.0 (~1.47x Norm)");

    const auto &wl = workloadNames();
    const double expos[] = {1.0, 1.5, 2.0, 2.5, 3.0};

    // Norm's lifetime is independent of Expo_Factor (all writes at
    // 1x latency), so it is simulated once as the common baseline.
    auto base_reports = runGrid(wl, {norm()});

    std::printf("%-10s %22s %22s\n", "expo",
                "Slow+SC_geomean_vs_Norm",
                "BE-Mellow+SC_geomean_vs_Norm");

    for (double expo : expos) {
        auto tweak = [expo](SystemConfig &cfg) {
            cfg.memory.endurance.expoFactor = expo;
        };
        auto reports =
            runGrid(wl, {slow().withSC(), beMellow().withSC()}, tweak);
        // Merge the shared Norm baseline into the result set.
        for (const SimReport &r : base_reports)
            reports.push_back(r);

        double slow_gain = geoMeanNormalized(reports, wl, "Slow+SC",
                                             "Norm", lifetimeOf);
        double mellow_gain = geoMeanNormalized(
            reports, wl, "BE-Mellow+SC", "Norm", lifetimeOf);
        std::printf("%-10.1f %22.3f %22.3f\n", expo, slow_gain,
                    mellow_gain);
    }

    std::printf("\n(paper: at expo=1.0 BE-Mellow+SC still reaches "
                "~1.47x Norm lifetime; Slow+SC gains ~2x more going "
                "2.0->3.0 while BE-Mellow+SC gains ~0.5x)\n");
    return 0;
}
