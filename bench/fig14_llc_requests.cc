/**
 * @file
 * Figure 14: memory requests sent from the LLC, split into demand
 * reads, demand write backs and eager write backs, normalized to the
 * Norm policy's request count.
 *
 * Paper observations to check: eager writes convert nearly half of
 * the demand write backs; the write increase from wasted eager
 * writes is small (up to ~2.2% on hmmer).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig14", "Memory requests from the LLC",
           "eager write backs replace ~half of demand write backs; "
           "waste (re-dirtied lines) stays ~2% or less");

    const auto &wl = workloadNames();
    auto reports = runGrid(wl, {norm(), beMellow().withSC()});

    std::printf("%-12s %12s %12s %12s %12s %10s %10s\n", "workload",
                "norm_reads", "norm_wb", "mellow_wb", "mellow_eager",
                "eager_share", "waste%");
    for (const std::string &w : wl) {
        const SimReport &n = findReport(reports, w, "Norm");
        const SimReport &m = findReport(reports, w, "BE-Mellow+SC");
        double writes_m =
            static_cast<double>(m.writebacksToMem + m.eagerSent);
        double eager_share =
            writes_m > 0.0 ? static_cast<double>(m.eagerSent) / writes_m
                           : 0.0;
        double waste =
            m.eagerSent > 0
                ? 100.0 * static_cast<double>(m.eagerWasted) /
                      static_cast<double>(m.writebacksToMem +
                                          m.eagerSent)
                : 0.0;
        std::printf("%-12s %12llu %12llu %12llu %12llu %10.3f %9.2f%%\n",
                    w.c_str(),
                    static_cast<unsigned long long>(n.llcDemandReads),
                    static_cast<unsigned long long>(n.writebacksToMem),
                    static_cast<unsigned long long>(m.writebacksToMem),
                    static_cast<unsigned long long>(m.eagerSent),
                    eager_share, waste);
    }

    std::printf("\n(eager_share: fraction of BE-Mellow+SC write backs "
                "that went through the eager queue; waste%%: extra "
                "writes from re-dirtied eager lines)\n");
    return 0;
}
