/**
 * @file
 * Figure 19: BE-Mellow+SC+WQ against every static policy.
 *
 * For each workload, the best static policy is the one that
 * guarantees the 8-year lifetime and delivers the highest IPC (if no
 * static policy reaches 8 years, the longest-lived one is marked
 * best). Paper observations to check: no static policy suits every
 * workload; BE-Mellow+SC+WQ matches or beats the best static policy
 * on ~8 of 11 workloads while always clearing 8 years.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

namespace
{
constexpr double kLifetimeTarget = 8.0;
}

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig19", "BE-Mellow+SC+WQ vs static policies",
           "mellow matches/beats the best 8-year-safe static policy "
           "on ~8/11 workloads");

    std::vector<WritePolicyConfig> statics = {
        norm(),
        eNorm().withNC(),
        slow().withSlowFactor(1.5).withSC(),
        slow().withSlowFactor(2.0).withSC(),
        slow().withSlowFactor(3.0).withSC(),
        eSlow().withSC(),
    };
    statics[2].name = "Slow1.5+SC";
    statics[3].name = "Slow2.0+SC";
    statics[4].name = "Slow3.0+SC";

    std::vector<WritePolicyConfig> all = statics;
    all.push_back(beMellow().withSC().withWQ());

    const auto &wl = workloadNames();
    auto reports = runGrid(wl, all);

    std::printf("%-12s %-16s %8s %9s   %-16s %8s %9s %7s\n", "workload",
                "best_static", "ipc", "life_yrs", "mellow", "ipc",
                "life_yrs", "result");

    int wins = 0;
    for (const std::string &w : wl) {
        // Pick the best static: highest IPC subject to the lifetime
        // target; fall back to longest lifetime.
        const SimReport *best = nullptr;
        for (const auto &p : statics) {
            const SimReport &r = findReport(reports, w, p.name);
            bool r_safe = r.lifetimeYears >= kLifetimeTarget;
            if (best == nullptr) {
                best = &r;
                continue;
            }
            bool b_safe = best->lifetimeYears >= kLifetimeTarget;
            if (r_safe != b_safe) {
                if (r_safe)
                    best = &r;
            } else if (r_safe) {
                if (r.ipc > best->ipc)
                    best = &r;
            } else if (r.lifetimeYears > best->lifetimeYears) {
                best = &r;
            }
        }

        const SimReport &m = findReport(reports, w, "BE-Mellow+SC+WQ");
        bool win = m.ipc >= best->ipc * 0.995;
        wins += win;
        std::printf("%-12s %-16s %8.3f %9.2f   %-16s %8.3f %9.2f %7s\n",
                    w.c_str(), best->policy.c_str(), best->ipc,
                    best->lifetimeYears, m.policy.c_str(), m.ipc,
                    m.lifetimeYears, win ? "WIN/TIE" : "lose");
    }

    std::printf("\nBE-Mellow+SC+WQ matches or beats the best static "
                "policy on %d of %zu workloads (paper: 8 of 11)\n",
                wins, wl.size());

    // How varied are the per-workload winners?
    std::printf("\nFull static IPC matrix (lifetime >= 8y marked *):\n");
    seriesHeader(wl, 10);
    for (const auto &p : all) {
        std::printf("%-18s", p.name.c_str());
        for (const std::string &w : wl) {
            const SimReport &r = findReport(reports, w, p.name);
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.2f%s", r.ipc,
                          r.lifetimeYears >= kLifetimeTarget ? "*"
                                                             : " ");
            std::printf(" %10s", cell);
        }
        std::printf("\n");
    }
    return 0;
}
