/**
 * @file
 * Ablation: wear charged to cancelled write attempts. The paper
 * states cancellation costs lifetime through repeated attempts but
 * does not quantify per-attempt wear; this library defaults to wear
 * proportional to the completed pulse fraction (DESIGN.md,
 * "Substitutions"). Sweeping the proportionality constant shows how
 * much of the cancellation lifetime penalty rides on that choice.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("abl_cancel_wear",
           "Cancelled-write wear fraction 0 / 0.5 / 1.0 (default 1.0)",
           "paper: cancellation 'comes at a penalty to memory "
           "lifetime due to the multiple write attempts'");

    const std::vector<std::string> wl = {"gups", "milc", "mcf",
                                         "stream"};
    std::printf("%-9s %-10s %8s %9s %11s %11s\n", "fraction",
                "workload", "ipc", "life_yrs", "cancelled",
                "write_issues");
    for (double fraction : {0.0, 0.5, 1.0}) {
        auto reports =
            runGrid(wl, {slow().withSC()},
                    [fraction](SystemConfig &cfg) {
                        cfg.memory.cancelWearFraction = fraction;
                    });
        for (const SimReport &r : reports) {
            std::printf("%-9.1f %-10s %8.3f %9.2f %11llu %11llu\n",
                        fraction, r.workload.c_str(), r.ipc,
                        r.lifetimeYears,
                        static_cast<unsigned long long>(
                            r.cancelledWrites),
                        static_cast<unsigned long long>(
                            r.totalBankWrites()));
        }
    }
    std::printf("\n(IPC is unaffected by the wear assumption; only "
                "lifetime moves)\n");
    return 0;
}
