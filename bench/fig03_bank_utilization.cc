/**
 * @file
 * Figure 3: average bank utilization of systems with normal writes.
 *
 * The motivating observation: even for memory-intensive workloads the
 * banks sit idle most of the time, leaving room for eager slow write
 * backs.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig03", "Average bank utilization under normal writes",
           "bank utilization is low across the board, leaving idle "
           "slots for slow writes");

    const auto &wl = workloadNames();
    auto reports = runGrid(wl, {norm()});

    seriesHeader(wl);
    series("utilization", wl,
           metricRow(reports, wl, "Norm", [](const SimReport &r) {
               return r.avgBankUtilization;
           }));

    double max_util = 0.0;
    for (const SimReport &r : reports)
        max_util = std::max(max_util, r.avgBankUtilization);
    std::printf("\nmax workload utilization: %.3f (idle time >= %.0f%% "
                "everywhere)\n",
                max_util, (1.0 - max_util) * 100.0);
    return 0;
}
