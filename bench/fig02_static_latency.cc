/**
 * @file
 * Figure 2: normalized IPC and lifetime for static write latencies
 * 1.0x / 1.5x / 2.0x / 3.0x, each with and without write cancellation.
 *
 * Paper observations to check: short latencies give unreasonably
 * short lifetimes for write-heavy workloads (lbm, leslie3d); globally
 * slow writes cost a lot of performance for stream; cancellation is
 * no silver bullet (helps milc/mcf reads, hurts hmmer/bwaves via
 * extra drains, and always costs lifetime).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig02",
           "Static write latencies 1x-3x, with/without cancellation",
           "stream: 63.8% IPC loss at 3.0x; lbm/leslie3d die young at "
           "1x-1.5x");

    const double factors[] = {1.0, 1.5, 2.0, 3.0};
    std::vector<WritePolicyConfig> policies;
    for (double f : factors) {
        policies.push_back(slow().withSlowFactor(f));
        policies.back().name = "Static" + std::to_string(f).substr(0, 3);
        policies.push_back(slow().withSlowFactor(f).withSC());
        policies.back().name =
            "Static" + std::to_string(f).substr(0, 3) + "+C";
    }

    const auto &wl = workloadNames();
    auto reports = runGrid(wl, policies);

    std::printf("IPC normalized to 1.0x latency (no cancellation):\n");
    seriesHeader(wl);
    for (const auto &p : policies) {
        auto vals = normalizedMetric(reports, wl, p.name, "Static1.0",
                                     ipcOf);
        series(p.name, wl, vals);
    }

    std::printf("\nLifetime (years):\n");
    seriesHeader(wl);
    for (const auto &p : policies)
        series(p.name, wl, metricRow(reports, wl, p.name, lifetimeOf));

    std::printf("\nHeadline checks:\n");
    const SimReport &s1 = findReport(reports, "stream", "Static1.0");
    const SimReport &s3 = findReport(reports, "stream", "Static3.0");
    std::printf("  stream IPC at 3.0x vs 1.0x: %.2fx (paper: ~0.36x, "
                "i.e. 63.8%% degradation)\n",
                s3.ipc / s1.ipc);
    std::printf("  lbm lifetime at 1.0x: %.2f years (paper: far below "
                "8)\n",
                findReport(reports, "lbm", "Static1.0").lifetimeYears);
    std::printf("  geomean lifetime gain 3.0x vs 1.0x: %.2fx (paper: "
                "~9x for expo=2)\n",
                geoMeanNormalized(reports, wl, "Static3.0", "Static1.0",
                                  [](const SimReport &r) {
                                      return r.lifetimeYears;
                                  }));
    return 0;
}
