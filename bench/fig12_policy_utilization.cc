/**
 * @file
 * Figure 12: average bank utilization by write policy.
 *
 * Paper observation: every policy using slow writes raises bank
 * utilization; mellow schemes can exceed even E-Slow+SC on lbm
 * because E-Slow+SC's lower performance sends fewer requests per
 * unit time.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig12", "Bank utilization by write policy",
           "slow-write policies raise utilization; mellow sometimes "
           "beats E-Slow+SC on lbm due to higher request throughput");

    const auto &wl = workloadNames();
    auto policies = paperPolicySet();
    auto reports = runGrid(wl, policies);

    seriesHeader(wl);
    for (const auto &p : policies) {
        series(p.name, wl,
               metricRow(reports, wl, p.name, [](const SimReport &r) {
                   return r.avgBankUtilization;
               }));
    }

    std::printf("\nHeadline check (lbm): BE-Mellow+SC %.3f vs "
                "E-Slow+SC %.3f vs Norm %.3f\n",
                findReport(reports, "lbm", "BE-Mellow+SC")
                    .avgBankUtilization,
                findReport(reports, "lbm", "E-Slow+SC")
                    .avgBankUtilization,
                findReport(reports, "lbm", "Norm").avgBankUtilization);
    return 0;
}
