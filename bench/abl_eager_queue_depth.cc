/**
 * @file
 * Ablation: eager mellow queue depth (the paper fixes it at 16
 * entries; Section IV-B2 argues small is enough). Sweeps 4/8/16/32
 * entries under BE-Mellow+SC on eager-friendly workloads.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("abl_eager_queue_depth",
           "Eager queue depth 4/8/16/32 (paper default: 16)",
           "a small eager queue suffices; depth mainly moves the "
           "eager-write share");

    const std::vector<std::string> wl = {"stream", "lbm", "GemsFDTD",
                                         "gups"};
    std::printf("%-7s %-10s %8s %9s %10s %13s\n", "depth", "workload",
                "ipc", "life_yrs", "eager", "demand_wb_pct");
    for (unsigned depth : {4u, 8u, 16u, 32u}) {
        auto reports = runGrid(wl, {beMellow().withSC()},
                               [depth](SystemConfig &cfg) {
                                   cfg.memory.eagerQueueSize = depth;
                               });
        for (const SimReport &r : reports) {
            // Share of write backs that the eager queue failed to
            // absorb (stayed demand write backs).
            double demand_share =
                100.0 * static_cast<double>(r.writebacksToMem) /
                static_cast<double>(r.writebacksToMem + r.eagerSent +
                                    1);
            std::printf("%-7u %-10s %8.3f %9.2f %10llu %12.1f%%\n",
                        depth, r.workload.c_str(), r.ipc,
                        r.lifetimeYears,
                        static_cast<unsigned long long>(r.eagerSent),
                        demand_share);
        }
    }
    return 0;
}
