/**
 * @file
 * Figure 16: main-memory energy consumption by policy, using CellC
 * energies from Table VI and 100 pJ row-buffer-hit reads.
 *
 * Paper observation to check: BE-Mellow+SC+WQ consumes ~1.39x the
 * main-memory energy of Norm — moderate at whole-system scale.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig16", "Main memory energy by policy (CellC)",
           "BE-Mellow+SC+WQ ~= 1.39x Norm main-memory energy");

    const auto &wl = workloadNames();
    auto policies = paperPolicySet();
    auto reports = runGrid(wl, policies);

    std::printf("Total main-memory energy normalized to Norm:\n");
    seriesHeader(wl);
    for (const auto &p : policies) {
        auto vals = normalizedMetric(reports, wl, p.name, "Norm",
                                     [](const SimReport &r) {
                                         return r.totalEnergyPj.value();
                                     });
        series(p.name, wl, vals);
    }

    std::printf("\nRead/write energy split (BE-Mellow+SC+WQ, mJ):\n");
    std::printf("%-12s %12s %12s\n", "workload", "read_mJ", "write_mJ");
    for (const std::string &w : wl) {
        const SimReport &r = findReport(reports, w, "BE-Mellow+SC+WQ");
        std::printf("%-12s %12.4f %12.4f\n", w.c_str(),
                    r.readEnergyPj.value() * 1e-9,
                    r.writeEnergyPj.value() * 1e-9);
    }

    std::printf("\nHeadline check: BE-Mellow+SC+WQ geomean energy vs "
                "Norm: %.3fx (paper: ~1.39x)\n",
                geoMeanNormalized(reports, wl, "BE-Mellow+SC+WQ",
                                  "Norm", [](const SimReport &r) {
                                      return r.totalEnergyPj.value();
                                  }));
    return 0;
}
