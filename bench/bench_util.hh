/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every fig*_ binary regenerates one artifact of the paper's
 * evaluation: it prints the same rows/series the figure plots, plus
 * the headline comparisons the paper calls out in prose, so
 * paper-vs-measured can be recorded in EXPERIMENTS.md.
 *
 * Scaling knobs (environment):
 *   MELLOWSIM_INSTRS  detailed instructions per run (default 2e7)
 *   MELLOWSIM_WARMUP  functional warm-up instructions (default 5e6)
 *   MELLOWSIM_JOBS    parallel simulations (default: all cores)
 *   MELLOWSIM_DEVICE  device config from configs/ (default: the
 *                     compiled-in reram_paper point)
 *   MELLOWSIM_SHARDS  shard-parallel workers per simulation
 *                     (default 0: the monolithic path; see
 *                     system/sharded.hh)
 *
 * Every binary also takes --device <name> / --device=<name>,
 * --list-devices and --shards <n> / --shards=<n> (see applyBenchArgs),
 * so a figure can be regenerated for any device in the zoo — or run
 * shard-parallel — without touching the environment.
 */

#ifndef MELLOWSIM_BENCH_BENCH_UTIL_HH
#define MELLOWSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "mellow/policy.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workload/workload.hh"

namespace benchutil
{

using namespace mellowsim;

/**
 * Consume the flags shared by every bench binary (--device,
 * --list-devices, --shards), leaving positional arguments compacted
 * in argv. Call first thing in main().
 */
inline void
applyBenchArgs(int &argc, char **argv)
{
    applyDeviceArgs(argc, argv);
    applyShardArgs(argc, argv);
}

/** Print the standard experiment banner, naming any selected device. */
inline void
banner(const char *id, const char *title, const char *paperClaim)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id, title);
    std::printf("paper: %s\n", paperClaim);
    // Device provenance goes to stderr: it is a diagnostic, and
    // keeping it out of the data stream preserves the fidelity
    // oracle — `--device reram_paper` output is byte-identical to
    // the default on stdout.
    const std::string device = activeDeviceName();
    if (!device.empty())
        std::fprintf(stderr, "device: %s\n", device.c_str());
    std::printf("==============================================================\n\n");
}

/** Print one named series of per-workload values. */
inline void
series(const std::string &name, const std::vector<std::string> &workloads,
       const std::vector<double> &values, const char *fmt = "%8.3f")
{
    // A length mismatch would print columns that silently misalign
    // with the seriesHeader() workload row.
    fatal_if(values.size() != workloads.size(),
             "series '%s': %zu values for %zu workloads", name.c_str(),
             values.size(), workloads.size());
    std::printf("%-18s", name.c_str());
    for (double v : values) {
        std::printf(" ");
        std::printf(fmt, v);
    }
    std::printf("\n");
}

/** Print the workload header row aligned with series(). */
inline void
seriesHeader(const std::vector<std::string> &workloads, int width = 8)
{
    std::printf("%-18s", "");
    for (const std::string &w : workloads)
        std::printf(" %*s", width, w.substr(0, width).c_str());
    std::printf("\n");
}

/** Gather a metric across workloads for one policy. */
inline std::vector<double>
metricRow(const std::vector<SimReport> &reports,
          const std::vector<std::string> &workloads,
          const std::string &policy, double (*metric)(const SimReport &))
{
    std::vector<double> out;
    for (const std::string &w : workloads)
        out.push_back(metric(findReport(reports, w, policy)));
    return out;
}

inline double
ipcOf(const SimReport &r)
{
    return r.ipc;
}

inline double
lifetimeOf(const SimReport &r)
{
    return r.lifetimeYears;
}

} // namespace benchutil

#endif // MELLOWSIM_BENCH_BENCH_UTIL_HH
