/**
 * @file
 * Figure 18: sensitivity to bank-level parallelism (GemsFDTD with 4,
 * 8 and 16 banks): (a) lifetime, (b) bank utilization, (c) eager
 * writes, (d) normal writes issued to banks.
 *
 * Paper observations to check: fewer banks shrink the Norm vs
 * BE-Mellow+SC lifetime gap, raise per-bank utilization, collapse
 * the eager write count and push more normal writes to the banks.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig18", "GemsFDTD vs number of banks (4/8/16)",
           "mellow benefit shrinks as bank-level parallelism drops");

    const unsigned banks[] = {4, 8, 16};
    std::printf("%-6s %-14s %10s %10s %12s %12s %12s\n", "banks",
                "policy", "lifetime", "bank_util", "eager_w",
                "normal_w", "cancelled");

    for (unsigned b : banks) {
        auto tweak = [b](SystemConfig &cfg) {
            cfg.memory.geometry.numBanks = b;
            cfg.memory.geometry.numRanks = b / 4;
        };
        auto reports = runGrid({"GemsFDTD"},
                               {norm(), beMellow().withSC()}, tweak);
        for (const SimReport &r : reports) {
            std::printf("%-6u %-14s %10.2f %10.3f %12llu %12llu "
                        "%12llu\n",
                        b, r.policy.c_str(), r.lifetimeYears,
                        r.avgBankUtilization,
                        static_cast<unsigned long long>(
                            r.issuedEagerSlow),
                        static_cast<unsigned long long>(
                            r.issuedNormalWrites),
                        static_cast<unsigned long long>(
                            r.cancelledWrites));
        }

        double gain =
            findReport(reports, "GemsFDTD", "BE-Mellow+SC")
                .lifetimeYears /
            findReport(reports, "GemsFDTD", "Norm").lifetimeYears;
        std::printf("       -> lifetime gain BE-Mellow+SC vs Norm at "
                    "%u banks: %.2fx\n",
                    b, gain);
    }
    return 0;
}
