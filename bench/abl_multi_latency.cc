/**
 * @file
 * Extension bench: multiple slow latencies (+ML), the paper's stated
 * future work (Section VI-I). Instead of the fixed two-speed scheme,
 * a slow write picks the largest factor from {1.5x, 2x, 3x} whose
 * pulse fits the bank's observed quiet time.
 *
 * The paper motivates this with the three workloads where the fixed
 * scheme loses to the best static policy: hmmer, lbm, stream.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("abl_multi_latency",
           "+ML adaptive latency ladder vs the fixed 3x slow write",
           "Section VI-I: 'a possible modification ... is to adopt "
           "multiple write latencies'");

    const auto &wl = workloadNames();
    auto reports = runGrid(wl, {
                                   norm(),
                                   beMellow().withSC(),
                                   beMellow().withSC().withML(),
                               });

    std::printf("IPC normalized to Norm:\n");
    seriesHeader(wl);
    for (const char *p : {"BE-Mellow+SC", "BE-Mellow+SC+ML"}) {
        series(p, wl, normalizedMetric(reports, wl, p, "Norm", ipcOf));
    }
    std::printf("\nLifetime normalized to Norm:\n");
    seriesHeader(wl);
    for (const char *p : {"BE-Mellow+SC", "BE-Mellow+SC+ML"}) {
        series(p, wl,
               normalizedMetric(reports, wl, p, "Norm", lifetimeOf));
    }

    std::printf("\nGeomeans vs Norm:\n");
    for (const char *p : {"BE-Mellow+SC", "BE-Mellow+SC+ML"}) {
        std::printf("  %-18s ipc %.3fx  lifetime %.2fx\n", p,
                    geoMeanNormalized(reports, wl, p, "Norm", ipcOf),
                    geoMeanNormalized(reports, wl, p, "Norm",
                                      lifetimeOf));
    }
    std::printf("\nPaper's fixed-scheme loss cases (IPC vs Norm):\n");
    for (const char *w : {"hmmer", "lbm", "stream"}) {
        std::printf("  %-8s fixed %.3f -> ML %.3f\n", w,
                    findReport(reports, w, "BE-Mellow+SC").ipc /
                        findReport(reports, w, "Norm").ipc,
                    findReport(reports, w, "BE-Mellow+SC+ML").ipc /
                        findReport(reports, w, "Norm").ipc);
    }
    return 0;
}
