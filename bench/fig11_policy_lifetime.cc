/**
 * @file
 * Figure 11: resistive memory lifetime (years) by write policy.
 *
 * Paper observations to check: E-Norm+NC has unacceptably short
 * lifetime; E-Slow+SC the longest; BE-Mellow+SC ~2.58x Norm
 * (9.30 years average in the paper's setup); every +WQ policy clears
 * 8 years.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mellowsim;
using namespace mellowsim::policies;
using namespace benchutil;

int
main(int argc, char **argv)
{
    benchutil::applyBenchArgs(argc, argv);
    banner("fig11", "Lifetime (years) by write policy",
           "BE-Mellow+SC ~2.58x Norm; +WQ lifts every workload to >=8 "
           "years");

    const auto &wl = workloadNames();
    auto policies = paperPolicySet();
    auto reports = runGrid(wl, policies);

    std::printf("Lifetime in years (log-scale in the paper):\n");
    seriesHeader(wl);
    for (const auto &p : policies)
        series(p.name, wl, metricRow(reports, wl, p.name, lifetimeOf),
               "%8.2f");

    std::printf("\n%-18s %s\n", "policy", "geomean_lifetime_vs_norm");
    for (const auto &p : policies) {
        std::printf("%-18s %.3f\n", p.name.c_str(),
                    geoMeanNormalized(reports, wl, p.name, "Norm",
                                      lifetimeOf));
    }

    std::printf("\nHeadline checks:\n");
    std::printf("  BE-Mellow+SC geomean vs Norm: %.2fx (paper: "
                "~2.58x)\n",
                geoMeanNormalized(reports, wl, "BE-Mellow+SC", "Norm",
                                  lifetimeOf));
    double min_wq = 1e30;
    std::string min_wq_wl;
    for (const std::string &w : wl) {
        double y =
            findReport(reports, w, "BE-Mellow+SC+WQ").lifetimeYears;
        if (y < min_wq) {
            min_wq = y;
            min_wq_wl = w;
        }
    }
    std::printf("  min lifetime under BE-Mellow+SC+WQ: %.2f years on "
                "%s (paper: guaranteed >= 8)\n",
                min_wq, min_wq_wl.c_str());
    return 0;
}
